"""`repro profile` backend: run a scenario with telemetry on and break it down.

:func:`profile_scenario` forces telemetry for the duration of one
``run_scenario`` call (optionally under cProfile) and returns the record
plus the full telemetry snapshot; :func:`format_profile` renders the
snapshot as the phase/category breakdown table the CLI prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.telemetry.core import counters_by_name, split_key


def profile_scenario(
    spec: Any,
    seed: int = 1,
    cprofile_path: Optional[str] = None,
    sort: str = "cumulative",
    top: int = 20,
) -> Tuple[Dict[str, Any], Dict[str, Any], Optional[str]]:
    """Run ``spec`` with telemetry enabled; return (record, snapshot, pstats text).

    When ``cprofile_path`` is given the run executes under :mod:`cProfile`,
    the raw stats are dumped to that path, and the third element is the
    formatted top-``top`` table (otherwise ``None``).
    """
    from repro.scenarios.build import run_scenario

    pstats_text: Optional[str] = None
    with telemetry.forced(True):
        if cprofile_path:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            record = profiler.runcall(run_scenario, spec, seed=seed)
            profiler.dump_stats(cprofile_path)
            buffer = io.StringIO()
            pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(top)
            pstats_text = buffer.getvalue()
        else:
            record = run_scenario(spec, seed=seed)
    snapshot = telemetry.take_last_run() or {}
    return record, snapshot, pstats_text


def _share(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    -"


def format_profile(
    scenario: str,
    seed: int,
    engine: str,
    snapshot: Dict[str, Any],
    top_categories: int = 15,
) -> str:
    """Render the profile breakdown table for one run's snapshot."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    spans = snapshot.get("spans", {})
    histograms = snapshot.get("histograms", {})

    events_total = counters.get("engine.events_total", 0)
    run_span = spans.get("engine.run", {})
    run_wall = run_span.get("total_s", 0.0)
    sim_time = gauges.get("engine.sim_time", 0.0)

    lines: List[str] = []
    lines.append(f"profile: {scenario} (seed {seed}, engine {engine})")
    rate = f"{events_total / run_wall:,.0f} events/s" if run_wall else "-"
    lines.append(
        f"simulated {sim_time:g} s, {events_total:,} events"
        f" in {run_wall:.3f} s wall ({rate})"
    )
    wall_per_sim = spans.get("engine.wall_per_sim_s", {}).get("total_s")
    if wall_per_sim is not None:
        lines.append(f"wall per simulated second: {wall_per_sim:.4f} s")

    phase_keys = [k for k in spans if k.startswith("phase.")]
    if phase_keys:
        phase_total = sum(spans[k]["total_s"] for k in phase_keys)
        lines.append("")
        lines.append(f"{'phase':<24}{'wall_s':>12}{'share':>9}")
        for key in sorted(phase_keys, key=lambda k: -spans[k]["total_s"]):
            total = spans[key]["total_s"]
            lines.append(
                f"  {key[len('phase.'):]:<22}{total:>12.4f}{_share(total, phase_total):>9}"
            )

    categories = counters_by_name(snapshot, "engine.events")
    if categories:
        categories.sort(key=lambda item: (-item[1], item[0].get("category", "")))
        lines.append("")
        lines.append(f"{'events by category':<44}{'count':>12}{'share':>9}")
        shown = 0
        for labels, count in categories[:top_categories]:
            name = labels.get("category", "?")
            lines.append(f"  {name:<42}{count:>12,}{_share(count, events_total):>9}")
            shown += count
        rest = events_total - shown
        if rest > 0:
            lines.append(f"  {'(other)':<42}{rest:>12,}{_share(rest, events_total):>9}")
        lines.append(f"  {'total':<42}{events_total:>12,}")

    engine_bits = []
    if "engine.heap_peak" in gauges:
        engine_bits.append(f"heap peak {gauges['engine.heap_peak']:,}")
    if "engine.compactions" in counters:
        engine_bits.append(f"compactions {counters['engine.compactions']:,}")
    if "engine.reschedule_fast_hits" in counters:
        engine_bits.append(
            f"reschedule fast-path hits {counters['engine.reschedule_fast_hits']:,}"
        )
    batch = histograms.get("engine.batch_size")
    if batch and batch.get("count"):
        mean = batch["sum"] / batch["count"]
        engine_bits.append(f"batch mean {mean:.2f} max {batch['max']:g}")
    if engine_bits:
        lines.append("")
        lines.append("engine: " + ", ".join(engine_bits))

    drops = counters_by_name(snapshot, "link.drops")
    if drops:
        parts = [
            f"{value:,} {labels.get('cause', '?')}"
            for labels, value in sorted(drops, key=lambda item: item[0].get("cause", ""))
        ]
        queue_line = "links: drops " + " / ".join(parts)
        if "queue.peak" in gauges:
            queue_line += f", peak queue occupancy {gauges['queue.peak']:g}"
        lines.append(queue_line)

    channel_drops = counters_by_name(snapshot, "link.channel_drops")
    if channel_drops:
        parts = [
            f"{value:,} {labels.get('cause', '?')}"
            for labels, value in sorted(
                channel_drops, key=lambda item: item[0].get("cause", "")
            )
        ]
        lines.append("channels: drops " + " / ".join(parts))

    cohort_steps = counters.get("cohort.steps")
    if cohort_steps:
        cohort_line = (
            f"cohorts: {gauges.get('cohort.receivers', 0):,.0f} receivers peak, "
            f"{cohort_steps:,} steps, {counters.get('cohort.reports_injected', 0):,}"
            f" reports injected, {counters.get('cohort.suppressed', 0):,} suppressed"
        )
        step_span = spans.get("cohort.step")
        if step_span:
            cohort_line += f", {step_span['total_s']:.3f} s stepping"
        lines.append(cohort_line)

    other_spans = sorted(
        k
        for k in spans
        if not k.startswith("phase.")
        and split_key(k)[0] not in ("engine.run", "engine.wall_per_sim_s", "cohort.step")
    )
    if other_spans:
        lines.append("")
        for key in other_spans:
            span = spans[key]
            lines.append(
                f"span {key}: {span['count']:,} x, {span['total_s']:.4f} s total,"
                f" {span['max_s']:.4f} s max"
            )

    return "\n".join(lines)
