"""Low-overhead runtime telemetry, off by default.

Enablement is controlled by the ``REPRO_TELEMETRY`` environment variable so
that it propagates automatically into multiprocessing pool workers under
both fork and spawn start methods.  When disabled (the default) the hot
paths pay at most a single ``is None`` check per call site: the simulator
keeps its original run loop, and no :class:`~repro.telemetry.core.Telemetry`
object exists.

Usage::

    from repro import telemetry

    with telemetry.forced(True):      # or REPRO_TELEMETRY=1 in the env
        record = run_scenario(spec, seed=7)
    snap = telemetry.take_last_run()  # full snapshot incl. wall-clock spans

``run_scenario`` opens a :func:`run_scope` around each simulation; inside
the scope :func:`active` returns the scope's :class:`Telemetry` sink (and
``None`` otherwise), which is how the simulator, queues and cohort engine
discover whether to instrument themselves.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.telemetry.core import (
    BUCKET_BOUNDS,
    Telemetry,
    counters_by_name,
    format_key,
    merge_snapshots,
    split_key,
)

__all__ = [
    "BUCKET_BOUNDS",
    "ENV_VAR",
    "Telemetry",
    "active",
    "counters_by_name",
    "enable",
    "disable",
    "enabled",
    "forced",
    "format_key",
    "merge_snapshots",
    "run_scope",
    "split_key",
    "take_last_run",
]

#: Environment variable gating telemetry; inherited by pool workers.
ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = {"1", "true", "yes", "on"}

#: The Telemetry sink of the innermost open run scope, or None.
_active: Optional[Telemetry] = None

#: Full snapshot of the most recently completed run scope, or None.
_last_run: Optional[Dict[str, Any]] = None


def enabled() -> bool:
    """True when telemetry collection is switched on for this process."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def enable() -> None:
    """Switch telemetry on process-wide (and for future pool workers)."""
    os.environ[ENV_VAR] = "1"


def disable() -> None:
    """Switch telemetry off (the default state)."""
    os.environ.pop(ENV_VAR, None)


@contextmanager
def forced(on: bool = True) -> Iterator[None]:
    """Temporarily force telemetry on/off, restoring the prior state."""
    prev = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "1" if on else "0"
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev


def active() -> Optional[Telemetry]:
    """The sink of the innermost open run scope, or None when disabled."""
    return _active


@contextmanager
def run_scope() -> Iterator[Optional[Telemetry]]:
    """Open a per-run collection scope.

    Yields a fresh :class:`Telemetry` when telemetry is enabled (making it
    visible to :func:`active` for the duration) or ``None`` when disabled.
    On exit the full snapshot is stashed for :func:`take_last_run`.
    """
    global _active, _last_run
    if not enabled():
        yield None
        return
    prev = _active
    tel = Telemetry()
    _active = tel
    try:
        yield tel
    finally:
        _active = prev
        _last_run = tel.snapshot()


def take_last_run() -> Optional[Dict[str, Any]]:
    """Pop the snapshot of the most recently completed run scope."""
    global _last_run
    snap = _last_run
    _last_run = None
    return snap
