"""Export telemetry snapshots as JSON or Prometheus text format.

Sources accepted by :func:`snapshot_from_source`:

* a snapshot JSON file (as written by ``repro profile --json`` or
  ``repro run --telemetry-out``);
* a result-record JSON file (the ``run.telemetry`` section is extracted);
* a JSONL result store — every record's ``run.telemetry`` section is
  merged into one fleet-level snapshot.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Tuple

from repro.telemetry.core import BUCKET_BOUNDS, merge_snapshots, split_key

_SECTIONS = ("counters", "gauges", "histograms", "spans")

_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITISE = re.compile(r"[^a-zA-Z0-9_]")


def snapshot_from_source(path: str) -> Dict[str, Any]:
    """Load a merged snapshot from a snapshot/record/store file (see module doc)."""
    if path.endswith(".jsonl"):
        sections: List[Mapping[str, Any]] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                section = record.get("run", {}).get("telemetry")
                if section:
                    sections.append(section)
        return merge_snapshots(sections)
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if any(key in data for key in _SECTIONS):
        return data
    section = data.get("run", {}).get("telemetry")
    if section:
        return section
    return {}


def _metric_name(key: str, prefix: str) -> Tuple[str, str]:
    name, labels = split_key(key)
    metric = _NAME_SANITISE.sub("_", f"{prefix}_{name}" if prefix else name)
    if not labels:
        return metric, ""
    inner = ",".join(
        f'{_LABEL_SANITISE.sub("_", k)}="{v}"' for k, v in sorted(labels.items())
    )
    return metric, "{" + inner + "}"


def _fmt(value: Any) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(snapshot: Mapping[str, Any], prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []

    typed: Dict[str, str] = {}

    def emit(metric: str, kind: str, labels: str, value: Any) -> None:
        if metric not in typed:
            lines.append(f"# TYPE {metric} {kind}")
            typed[metric] = kind
        lines.append(f"{metric}{labels} {_fmt(value)}")

    for key in sorted(snapshot.get("counters", {})):
        metric, labels = _metric_name(key, prefix)
        emit(metric + "_total", "counter", labels, snapshot["counters"][key])

    for key in sorted(snapshot.get("gauges", {})):
        metric, labels = _metric_name(key, prefix)
        emit(metric, "gauge", labels, snapshot["gauges"][key])

    for key in sorted(snapshot.get("histograms", {})):
        metric, labels = _metric_name(key, prefix)
        hist = snapshot["histograms"][key]
        buckets = hist.get("buckets", {})
        base = labels[1:-1] if labels else ""
        cumulative = 0
        if metric not in typed:
            lines.append(f"# TYPE {metric} histogram")
            typed[metric] = "histogram"
        for bound in BUCKET_BOUNDS:
            bound_key = str(bound)
            cumulative += buckets.get(bound_key, 0)
            le = ",".join(filter(None, [base, f'le="{bound}"']))
            lines.append(f"{metric}_bucket{{{le}}} {cumulative}")
        cumulative += buckets.get("+Inf", 0)
        le = ",".join(filter(None, [base, 'le="+Inf"']))
        lines.append(f"{metric}_bucket{{{le}}} {cumulative}")
        lines.append(f"{metric}_sum{labels} {_fmt(hist['sum'])}")
        lines.append(f"{metric}_count{labels} {_fmt(hist['count'])}")

    for key in sorted(snapshot.get("spans", {})):
        metric, labels = _metric_name(key, prefix)
        span = snapshot["spans"][key]
        emit(metric + "_seconds_count", "counter", labels, span["count"])
        emit(metric + "_seconds_sum", "counter", labels, span["total_s"])
        emit(metric + "_seconds_max", "gauge", labels, span["max_s"])

    return "\n".join(lines) + ("\n" if lines else "")
