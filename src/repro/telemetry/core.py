"""Telemetry primitives: counters, gauges, histograms and span timers.

A :class:`Telemetry` instance is a plain in-process metric sink.  It is
deliberately dependency-free and allocation-light: metrics live in flat
dicts keyed by ``name{label=value,...}`` strings (labels sorted, so the
same logical series always maps to the same key), histograms use
power-of-two buckets, and nothing is computed until :meth:`snapshot`.

Two snapshot flavours exist:

``snapshot()``
    Everything, including wall-clock span timings.  Used by the heartbeat
    stream, ``repro profile`` and ``repro telemetry``.
``record_section()``
    Only the deterministic sections (counters / gauges / histograms).
    This is what gets embedded under ``run.telemetry`` in result records,
    so stores stay byte-identical across machines, worker counts and
    resume patterns even with telemetry enabled.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Upper bounds of the histogram buckets (powers of two); observations above
#: the last bound land in the ``+Inf`` overflow bucket.
BUCKET_BOUNDS: Tuple[int, ...] = tuple(2 ** i for i in range(17))  # 1 .. 65536

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def format_key(name: str, labels: Optional[Mapping[str, Any]] = None) -> str:
    """Build the flat series key ``name`` or ``name{k=v,...}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`format_key`: return ``(name, labels)``."""
    match = _KEY_RE.match(key)
    if match is None:  # pragma: no cover - keys are always produced by format_key
        return key, {}
    name = match.group("name")
    raw = match.group("labels")
    if not raw:
        return name, {}
    labels: Dict[str, str] = {}
    for part in raw.split(","):
        k, _, v = part.partition("=")
        labels[k] = v
    return name, labels


class Telemetry:
    """In-process metric sink for one scope (typically one scenario run)."""

    __slots__ = ("counters", "gauges", "_histograms", "spans")

    def __init__(self) -> None:
        #: key -> cumulative count (int or float).
        self.counters: Dict[str, Any] = {}
        #: key -> last/max value depending on how it was set.
        self.gauges: Dict[str, Any] = {}
        #: key -> [count, sum, min, max, bucket-counts list].
        self._histograms: Dict[str, list] = {}
        #: key -> [count, total_s, max_s] wall-clock aggregates.
        self.spans: Dict[str, list] = {}

    # ------------------------------------------------------------ counters

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = format_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    # ------------------------------------------------------------ gauges

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauges[format_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels: Any) -> None:
        key = format_key(name, labels)
        prev = self.gauges.get(key)
        if prev is None or value > prev:
            self.gauges[key] = value

    # ------------------------------------------------------------ histograms

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = format_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = [0, 0, value, value, [0] * (len(BUCKET_BOUNDS) + 1)]
            self._histograms[key] = hist
        hist[0] += 1
        hist[1] += value
        if value < hist[2]:
            hist[2] = value
        if value > hist[3]:
            hist[3] = value
        buckets = hist[4]
        for i, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                buckets[i] += 1
                break
        else:
            buckets[-1] += 1

    # ------------------------------------------------------------ spans

    def timing(self, name: str, total_s: float, count: int = 1, **labels: Any) -> None:
        """Record ``count`` span executions totalling ``total_s`` wall seconds."""
        key = format_key(name, labels)
        span = self.spans.get(key)
        if span is None:
            self.spans[key] = [count, total_s, total_s]
        else:
            span[0] += count
            span[1] += total_s
            if total_s > span[2]:
                span[2] = total_s

    # ------------------------------------------------------------ snapshots

    def _histogram_snapshot(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for key in sorted(self._histograms):
            count, total, lo, hi, buckets = self._histograms[key]
            bucket_map: Dict[str, int] = {}
            for i, n in enumerate(buckets):
                if n:
                    label = str(BUCKET_BOUNDS[i]) if i < len(BUCKET_BOUNDS) else "+Inf"
                    bucket_map[label] = n
            out[key] = {
                "count": count,
                "sum": total,
                "min": lo,
                "max": hi,
                "buckets": bucket_map,
            }
        return out

    def record_section(self) -> Dict[str, Any]:
        """Deterministic subset embedded under ``run.telemetry`` in records."""
        section: Dict[str, Any] = {}
        if self.counters:
            section["counters"] = {k: self.counters[k] for k in sorted(self.counters)}
        if self.gauges:
            section["gauges"] = {k: self.gauges[k] for k in sorted(self.gauges)}
        if self._histograms:
            section["histograms"] = self._histogram_snapshot()
        return section

    def snapshot(self) -> Dict[str, Any]:
        """Full snapshot including wall-clock spans (non-deterministic)."""
        snap = self.record_section()
        if self.spans:
            snap["spans"] = {
                k: {
                    "count": self.spans[k][0],
                    "total_s": self.spans[k][1],
                    "max_s": self.spans[k][2],
                }
                for k in sorted(self.spans)
            }
        return snap


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate snapshots (or ``run.telemetry`` sections) from many runs.

    Counters and histogram counts/sums add, gauges keep the max (they record
    peaks), span counts/totals add with the max of maxima.
    """
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Any] = {}
    histograms: Dict[str, dict] = {}
    spans: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            prev = gauges.get(key)
            if prev is None or value > prev:
                gauges[key] = value
        for key, hist in snap.get("histograms", {}).items():
            agg = histograms.get(key)
            if agg is None:
                histograms[key] = {
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                    "buckets": dict(hist.get("buckets", {})),
                }
            else:
                agg["count"] += hist["count"]
                agg["sum"] += hist["sum"]
                agg["min"] = min(agg["min"], hist["min"])
                agg["max"] = max(agg["max"], hist["max"])
                for label, n in hist.get("buckets", {}).items():
                    agg["buckets"][label] = agg["buckets"].get(label, 0) + n
        for key, span in snap.get("spans", {}).items():
            agg = spans.get(key)
            if agg is None:
                spans[key] = dict(span)
            else:
                agg["count"] += span["count"]
                agg["total_s"] += span["total_s"]
                agg["max_s"] = max(agg["max_s"], span["max_s"])
    merged: Dict[str, Any] = {}
    if counters:
        merged["counters"] = {k: counters[k] for k in sorted(counters)}
    if gauges:
        merged["gauges"] = {k: gauges[k] for k in sorted(gauges)}
    if histograms:
        merged["histograms"] = {k: histograms[k] for k in sorted(histograms)}
    if spans:
        merged["spans"] = {k: spans[k] for k in sorted(spans)}
    return merged


def counters_by_name(
    snapshot: Mapping[str, Any], name: str
) -> List[Tuple[Dict[str, str], Any]]:
    """Return ``(labels, value)`` pairs for every counter series of ``name``."""
    out: List[Tuple[Dict[str, str], Any]] = []
    for key, value in snapshot.get("counters", {}).items():
        base, labels = split_key(key)
        if base == name:
            out.append((labels, value))
    return out
