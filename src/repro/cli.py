"""Command-line interface: ``python -m repro {list,show,run,sweep}``.

Examples
--------
List the scenario catalogue::

    python -m repro list

Inspect the concrete spec a scenario expands to::

    python -m repro show bursty-loss --set burst_length=16

Run one scenario and append its record to a JSONL file::

    python -m repro run fairness --seed 3 --out results/fairness.jsonl

Override any spec field by dotted path — including per-flow protocol
parameters (``FlowSpec.params``), which makes protocol ablations one flag::

    python -m repro run tfmcc_vs_tfrc --override flows.0.params.max_rtt=0.3

Run a seeded sweep over a parameter grid on 4 worker processes; dotted grid
keys sweep override paths (protocol parameters, topology fields)::

    python -m repro sweep fairness --jobs 4 --grid num_tcp=2,4,8 --reps 4
    python -m repro sweep scaling --grid flows.0.params.max_rtt=0.25,0.5,1.0

Sweeps are resumable (an interrupted sweep continues where it left off when
re-run — a completed one is a no-op), shardable across hosts, and can share
a spec-fingerprint result cache with ``run`` and ``report``::

    python -m repro sweep fairness --reps 64 --out r/fair.jsonl   # Ctrl-C, then re-run
    python -m repro sweep scaling --shard 0/4 --out r/shard0.jsonl
    python -m repro sweep --compact r/shard0.jsonl r/shard1.jsonl --out r/merged.jsonl
    python -m repro sweep fairness --cache results/cache.jsonl

Build the paper-figure datasets/plots and verify them against the models::

    python -m repro report --quick --check

Run the long-running simulation service and talk to it::

    python -m repro serve --uds /tmp/repro.sock --data results/service --jobs 4
    python -m repro submit fairness --seed 3 --server unix:///tmp/repro.sock --wait
    python -m repro status --server unix:///tmp/repro.sock
    python -m repro watch j00001 --server unix:///tmp/repro.sock
    python -m repro cancel j00001 --server unix:///tmp/repro.sock
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

import os

from repro.bench import DEFAULT_OUT_DIR as BENCH_OUT_DIR, DEFAULT_THRESHOLD as BENCH_THRESHOLD

# Mirrors repro.report.runner.DEFAULT_OUT_DIR; the report package (and its
# scipy/matplotlib-needing dependencies) is imported lazily in cmd_report so
# the rest of the CLI keeps its stdlib-only footprint.
REPORT_OUT_DIR = os.path.join("results", "figures")
from contextlib import nullcontext

from repro import telemetry
from repro.scenarios.cache import ResultCache, fingerprint_spec
from repro.scenarios.registry import get_scenario, scenarios
from repro.scenarios.build import run_scenario
from repro.scenarios.store import ResultStore, encode_record
from repro.scenarios.sweep import (
    SweepRunner,
    compact_stores,
    heartbeat_path,
    manifest_path,
    run_env,
    shard_skew,
)


def _parse_value(text: str) -> Any:
    """Parse a CLI parameter value: int, float, bool or bare string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_set(args: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--set key=value`` options."""
    params: Dict[str, Any] = {}
    for item in args:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --set expects key=value, got {item!r}")
        params[key] = _parse_value(value)
    return params


def _parse_grid(args: Sequence[str]) -> Dict[str, List[Any]]:
    """Parse repeated ``--grid key=v1,v2,...`` options."""
    grid: Dict[str, List[Any]] = {}
    for item in args:
        key, sep, values = item.partition("=")
        if not sep or not key or not values:
            raise SystemExit(f"error: --grid expects key=v1,v2,..., got {item!r}")
        grid[key] = [_parse_value(v) for v in values.split(",")]
    return grid


def _split_overrides(factory, set_args: Sequence[str], override_args: Sequence[str], engine: Optional[str] = None):
    """Split CLI inputs into factory params and spec overrides.

    Plain (undotted) ``--override`` keys that name a scenario parameter are
    routed into the factory call — ``--override num_receivers=10000`` means
    the parameter, not a (nonexistent) spec field.  ``--engine`` is sugar
    for ``--override engine.kind=...`` and wins over both.
    """
    params = _parse_set(set_args)
    overrides = _parse_set(override_args)
    for key in [k for k in overrides if "." not in k and k in factory.defaults]:
        params[key] = overrides.pop(key)
    if engine:
        overrides["engine.kind"] = engine
    return params, overrides


def _summarise(record: Dict[str, Any], out=None) -> None:
    out = out if out is not None else sys.stdout
    ratio = record.get("tfmcc_tcp_ratio")
    print(f"scenario : {record['scenario']}  (seed {record['seed']})", file=out)
    print(f"duration : {record['duration']:.1f} s simulated, {record['events']} events", file=out)
    engine = record.get("engine")
    if engine:
        print(
            f"engine   : {engine['kind']}  "
            f"({engine['receivers_cohort']} of {engine['receivers_total']} "
            f"receivers vectorised, {engine['tracer_receivers']} tracers)",
            file=out,
        )
    print(f"tfmcc    : {record['tfmcc_mean_bps'] / 1e3:10.1f} kbit/s (mean over receivers)", file=out)
    if record.get("tcp_mean_bps"):
        print(f"tcp      : {record['tcp_mean_bps'] / 1e3:10.1f} kbit/s (mean over flows)", file=out)
    if record.get("tfrc_mean_bps"):
        tfrc_ratio = record.get("tfmcc_tfrc_ratio")
        suffix = f"  (TFMCC / TFRC = {tfrc_ratio:.2f})" if tfrc_ratio is not None else ""
        print(f"tfrc     : {record['tfrc_mean_bps'] / 1e3:10.1f} kbit/s{suffix}", file=out)
    if ratio is not None:
        print(f"ratio    : {ratio:10.2f}  (TFMCC / TCP)", file=out)
    print(f"fairness : {record['fairness_index']:10.3f}  (Jain index)", file=out)
    if "links" in record:
        links = record["links"]
        down = (
            f", {links['down_drops']} down-link drops" if "down_drops" in links else ""
        )
        print(
            f"loss     : {links['queue_drops']} queue drops, "
            f"{links['random_drops']} random drops{down} "
            f"({links['packets_sent']} packets forwarded)",
            file=out,
        )
    channel = record.get("trace", {}).get("channel")
    if channel:
        drops = record.get("links", {}).get("channel_drops", {})
        causes = ", ".join(f"{v} {k}" for k, v in sorted(drops.items())) or "none"
        per = channel.get("per", {}).get("mean")
        per_part = f"mean sampled PER {per:.3f}, " if per is not None else ""
        print(
            f"channel  : {per_part}drops by cause: {causes}, "
            f"{channel.get('mobility_updates', 0)} mobility updates",
            file=out,
        )
    dynamics = record.get("trace", {}).get("dynamics")
    if dynamics:
        print(
            f"dynamics : {len(dynamics['events'])} scripted events, "
            f"{dynamics['route_rebuilds']} route rebuilds, "
            f"{len(dynamics['clr_switches'])} CLR switches",
            file=out,
        )
    for flow in record["flows"]:
        print(f"  {flow['kind']:>10}  {flow['id']:<24} {flow['avg_bps'] / 1e3:10.1f} kbit/s", file=out)


def cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for factory in scenarios():
        params = ", ".join(f"{k}={v!r}" for k, v in factory.defaults.items())
        rows.append((factory.name, factory.description, params))
    width = max(len(name) for name, _, _ in rows)
    for name, description, params in rows:
        print(f"{name:<{width}}  {description}")
        print(f"{'':<{width}}    parameters: {params}")
    return 0


def _flow_table(spec, out) -> None:
    """Print the unified flow table of a spec (one line per FlowSpec)."""
    print(f"flows ({len(spec.flows)}):", file=out)
    for index, flow in enumerate(spec.flows):
        if flow.receivers:
            endpoint = f"{flow.src} -> {len(flow.receivers)} receiver(s)"
        else:
            endpoint = f"{flow.src} -> {flow.dst}"
        stop = f"{flow.stop:g}" if flow.stop is not None else "end"
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(flow.params.items()))
        print(
            f"  [{index}] {flow.name:<14} {flow.kind:<9} {endpoint:<28} "
            f"t={flow.start:g}..{stop}"
            + (f"  params: {params}" if params else ""),
            file=out,
        )


def cmd_show(args: argparse.Namespace) -> int:
    factory = get_scenario(args.scenario)
    params, overrides = _split_overrides(factory, args.set, args.override, args.engine)
    spec = factory.spec(**params)
    if overrides:
        spec = spec.with_overrides(**overrides)
    print(spec.to_json(indent=2))
    # The table goes to stderr so stdout stays machine-parseable JSON.
    print(f"engine: {spec.engine.kind} (tracers={spec.engine.tracer_receivers})", file=sys.stderr)
    _flow_table(spec, sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    factory = get_scenario(args.scenario)
    params, overrides = _split_overrides(factory, args.set, args.override, args.engine)
    spec = factory.spec(**params)
    if overrides:
        spec = spec.with_overrides(**overrides)
    fingerprint = fingerprint_spec(spec, args.seed)
    cache = ResultCache(args.cache) if args.cache else None
    started = time.perf_counter()
    record = cache.get(fingerprint) if cache is not None else None
    if record is not None:
        print(f"cache hit {fingerprint} in {args.cache}", file=sys.stderr)
    else:
        with telemetry.forced(True) if args.telemetry else nullcontext():
            record = run_scenario(spec, seed=args.seed)
        if cache is not None:
            cache.put(fingerprint, record)
    elapsed = time.perf_counter() - started
    record["run"] = {
        "index": 0,
        "seed": args.seed,
        "params": {**params, **overrides},
        "scenario": args.scenario,
        "engine": spec.engine.kind,
        "fingerprint": fingerprint,
        "env": run_env(),
    }
    snapshot = telemetry.take_last_run()
    if snapshot is not None:
        section = {
            key: snapshot[key]
            for key in ("counters", "gauges", "histograms")
            if key in snapshot
        }
        if section:
            record["run"]["telemetry"] = section
        if args.telemetry_out:
            with open(args.telemetry_out, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"telemetry snapshot written to {args.telemetry_out}", file=sys.stderr)
    if args.out:
        ResultStore(args.out).append(record)
        print(f"appended 1 record to {args.out}", file=sys.stderr)
    if args.json:
        print(encode_record(record))
    else:
        _summarise(record)
        print(f"wall     : {elapsed:10.1f} s", file=sys.stderr)
    return 0


def _parse_shard(text: Optional[str]) -> Optional[tuple]:
    """Parse ``--shard I/N`` into a (i, n) tuple."""
    if text is None:
        return None
    index, sep, count = text.partition("/")
    try:
        if not sep:
            raise ValueError
        return (int(index), int(count))
    except ValueError:
        raise SystemExit(f"error: --shard expects I/N (e.g. 0/4), got {text!r}") from None


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.compact:
        if not args.out:
            raise SystemExit("error: --compact requires --out for the merged store")
        count = compact_stores(args.out, args.compact)
        print(
            f"compacted {len(args.compact)} shard store(s) into {args.out} "
            f"({count} records, sorted by run index, duplicates dropped)",
            file=sys.stderr,
        )
        rows = shard_skew(args.compact)
        if rows:
            walls = [row["wall_s"] for row in rows]
            slowest = max(rows, key=lambda row: row["wall_s"])
            retried = sum(row["retried"] for row in rows)
            print(
                f"fleet skew over {len(rows)} shard(s): wall min {min(walls):.1f}s / "
                f"mean {sum(walls) / len(walls):.1f}s / max {max(walls):.1f}s "
                f"(slowest {slowest['path']}), {retried} retries total",
                file=sys.stderr,
            )
            for row in rows:
                print(
                    f"  {row['path']}: {row['completed']}/{row['total']} runs, "
                    f"{row['wall_s']:.1f}s wall, {row['retried']} retried, "
                    f"{row['failed']} failed",
                    file=sys.stderr,
                )
        return 0
    if not args.scenario:
        raise SystemExit("error: a scenario name is required (unless using --compact)")
    grid = _parse_grid(args.grid)
    # Fixed dotted overrides ride in params; SweepRun.resolve_spec applies
    # them (and dotted grid axes) via ScenarioSpec.with_overrides.
    params = {**_parse_set(args.set), **_parse_set(args.override)}
    if args.engine:
        params["engine.kind"] = args.engine
    runner = SweepRunner(
        args.scenario,
        grid=grid,
        params=params,
        replications=args.reps,
        base_seed=args.seed,
        jobs=args.jobs,
        shard=_parse_shard(args.shard),
        max_retries=args.retries,
    )
    runs = runner.shard_runs()
    out = args.out or f"results/{args.scenario}-sweep.jsonl"
    if args.fresh:
        for path in (out, manifest_path(out), heartbeat_path(out)):
            if os.path.exists(path):
                os.remove(path)
    cache = ResultCache(args.cache) if args.cache else None
    shard_note = f", shard {args.shard}" if args.shard else ""
    print(
        f"sweep {args.scenario!r}: {len(runs)} runs "
        f"({len(grid) or 'no'} grid axes x {args.reps} replications{shard_note}), "
        f"jobs={args.jobs}, out={out}",
        file=sys.stderr,
    )
    print(f"  heartbeat: {heartbeat_path(out)}", file=sys.stderr)
    started = time.perf_counter()

    def progress(done: int, total: int, record: Dict[str, Any]) -> None:
        if not args.quiet:
            stats = runner.stats
            elapsed = time.perf_counter() - started
            fresh = done - stats.resumed
            eta = elapsed / fresh * (total - done) if fresh > 0 else 0.0
            rate = record.get("tfmcc_mean_bps")
            label = (
                f"tfmcc={rate / 1e3:.1f} kbit/s"
                if rate is not None
                else f"FAILED ({record.get('error', 'unknown')})"
            )
            print(
                f"  [{done}/{total}] seed={record['run']['seed']} "
                f"params={record['run']['params']} {label} "
                f"({elapsed:.1f}s, eta {eta:.0f}s, "
                f"cache {stats.cached} hit / {stats.executed} miss, "
                f"{stats.retried} retried)",
                file=sys.stderr,
            )

    with telemetry.forced(True) if args.telemetry else nullcontext():
        runner.execute(
            store=ResultStore(out),
            progress=progress,
            cache=cache,
            stop_after=args.stop_after,
            collect=False,
        )
    stats = runner.stats
    if args.stop_after is not None and stats.completed < stats.total:
        print(
            f"stopped after {args.stop_after} new run(s): {stats.summary()} — "
            "re-run the same command to resume",
            file=sys.stderr,
        )
    else:
        print(f"completed {stats.summary()}, results in {out}", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry.profile import format_profile, profile_scenario

    factory = get_scenario(args.scenario)
    params, overrides = _split_overrides(factory, args.set, args.override, args.engine)
    spec = factory.spec(**params)
    if overrides:
        spec = spec.with_overrides(**overrides)
    if args.quick and spec.duration > 10.0:
        spec = spec.with_overrides(duration=10.0)
    record, snapshot, pstats_text = profile_scenario(
        spec, seed=args.seed, cprofile_path=args.cprofile, top=args.top
    )
    if record.get("failed"):
        print(f"error: profiled run failed: {record.get('error')}", file=sys.stderr)
        return 1
    print(format_profile(args.scenario, args.seed, spec.engine.kind, snapshot))
    if pstats_text:
        print()
        print(pstats_text.rstrip())
        print(f"cProfile stats written to {args.cprofile}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"telemetry snapshot written to {args.json}", file=sys.stderr)
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry.export import snapshot_from_source, to_prometheus

    snapshot = snapshot_from_source(args.source)
    if not snapshot:
        print(f"no telemetry data found in {args.source}", file=sys.stderr)
        return 1
    if args.format == "prom":
        sys.stdout.write(to_prometheus(snapshot, prefix=args.prefix))
    else:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import figure_names, run_report, summarise
    from repro.report.figures import FIGURES

    if args.list:
        width = max(len(name) for name in figure_names())
        for name in figure_names():
            figure = FIGURES[name]
            print(f"{name:<{width}}  {figure.paper_figures}: {figure.title}")
        return 0
    # Validate names up front; a try/except around run_report would also
    # swallow KeyErrors raised by genuine bugs inside the figure builds.
    unknown = [name for name in (args.figure or []) if name not in FIGURES]
    if unknown:
        print(
            f"error: unknown figure(s) {unknown}; available: {', '.join(figure_names())}",
            file=sys.stderr,
        )
        return 2
    reports, failures = run_report(
        figures=args.figure or None,
        quick=args.quick,
        check=args.check,
        out_dir=args.out,
        jobs=args.jobs,
        reuse=args.reuse,
        plots=not args.no_plots,
        cache=args.cache,
    )
    print(summarise(reports))
    if failures:
        for failure in failures:
            print(f"report check failed: {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.list:
        for name in sorted(bench.WORKLOADS):
            print(name)
        return 0
    # Validate up front rather than catching KeyError around the whole run,
    # which would also mask KeyErrors raised by bugs inside the workloads.
    unknown = [name for name in (args.workload or []) if name not in bench.WORKLOADS]
    if unknown:
        print(
            f"error: unknown workload(s) {unknown}; available: "
            f"{', '.join(sorted(bench.WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    _results, failures = bench.run_bench(
        names=args.workload or None,
        quick=args.quick,
        out_dir=args.out,
        baseline_dir=args.baseline,
        check=args.check,
        threshold=args.threshold,
    )
    if failures:
        for failure in failures:
            print(f"bench check failed: {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ReproService

    service = ReproService(
        data_dir=args.data,
        host=args.host,
        port=args.port,
        uds=args.uds,
        workers=args.jobs,
        max_retries=args.retries,
        verbose=args.verbose,
    )
    return service.run()


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.server)


def _submit_payload(args: argparse.Namespace) -> Dict[str, Any]:
    params = {**_parse_set(args.set), **_parse_set(args.override)}
    if args.engine:
        params["engine.kind"] = args.engine
    payload: Dict[str, Any] = {"scenario": args.scenario, "seed": args.seed}
    if params:
        payload["params"] = params
    grid = _parse_grid(args.grid)
    if grid:
        payload["grid"] = grid
    if args.reps != 1:
        payload["replications"] = args.reps
    return payload


def _print_job_line(job: Dict[str, Any], out) -> None:
    sources = job.get("sources", {})
    mix = ", ".join(f"{v} {k}" for k, v in sources.items() if v) or "-"
    print(
        f"{job['id']:<8} {job['state']:<10} {str(job.get('scenario')):<22} "
        f"{job['completed']}/{job['units']} units  ({mix})",
        file=out,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        job = client.submit(_submit_payload(args))
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {job['id']} ({job['units']} unit(s)) to {client.server}", file=sys.stderr)
    if not args.wait:
        print(job["id"])
        return 0
    final = client.wait(job["id"], timeout=args.timeout)
    if final["state"] != "done":
        print(f"job {job['id']} finished as {final['state']}", file=sys.stderr)
        return 1
    result = client.result(job["id"])
    records = result["records"] if isinstance(result, dict) and "records" in result else [result]
    if args.json:
        for record in records:
            print(encode_record(record))
    else:
        for record in records:
            _summarise(record)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        if args.job:
            job = client.job(args.job)
            if args.json:
                print(json.dumps(job, indent=2, sort_keys=True))
            else:
                _print_job_line(job, sys.stdout)
            return 0
        jobs = client.jobs()
        if args.json:
            print(json.dumps(jobs, indent=2, sort_keys=True))
            return 0
        health = client.health()
        stats = client.stats()
        print(
            f"service {client.server}: {health['status']}, "
            f"{stats['inflight_tasks']} in flight, {stats['pending_tasks']} pending, "
            f"{stats['cache_entries']} cached records "
            f"({stats['cache_hits']} hits / {stats['cache_misses']} misses)",
            file=sys.stderr,
        )
        for job in jobs:
            _print_job_line(job, sys.stdout)
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        response = client.cancel(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if response.get("cancelled"):
        print(f"cancelled {args.job}", file=sys.stderr)
        return 0
    print(
        f"{args.job} already {response.get('state', 'terminal')}; nothing to cancel",
        file=sys.stderr,
    )
    return 1


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    state = None
    try:
        for event, data in client.watch(args.job, from_seq=args.from_seq):
            if args.json:
                print(json.dumps({"event": event, **data}, sort_keys=True))
            else:
                detail = {k: v for k, v in data.items() if k != "seq"}
                parts = ", ".join(f"{k}={v}" for k, v in sorted(detail.items()))
                print(f"[{data.get('seq', '?')}] {event}: {parts}")
            if event == "state":
                state = data.get("state")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        return 130
    return 0 if state in (None, "done") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TFMCC reproduction: declarative scenarios, runs and sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.set_defaults(func=cmd_list)

    override_help = (
        "override a spec field by dotted path, e.g. flows.0.params.max_rtt=0.3 "
        "or topology.bottleneck_bps=2e6; repeatable"
    )
    engine_help = (
        "simulation engine (shorthand for --override engine.kind=...): "
        "'exact' (default, per-packet) or 'cohort' (vectorised receivers)"
    )

    p_show = sub.add_parser("show", help="print the JSON spec of a scenario")
    p_show.add_argument("scenario")
    p_show.add_argument("--set", action="append", default=[], metavar="KEY=VALUE")
    p_show.add_argument(
        "--override", action="append", default=[], metavar="PATH=VALUE", help=override_help
    )
    p_show.add_argument("--engine", default=None, help=engine_help)
    p_show.set_defaults(func=cmd_show)

    p_run = sub.add_parser("run", help="run one scenario and print a summary")
    p_run.add_argument("scenario")
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--set", action="append", default=[], metavar="KEY=VALUE")
    p_run.add_argument(
        "--override", action="append", default=[], metavar="PATH=VALUE", help=override_help
    )
    p_run.add_argument("--engine", default=None, help=engine_help)
    p_run.add_argument("--out", help="append the result record to this JSONL file")
    p_run.add_argument("--json", action="store_true", help="print the raw record as JSON")
    p_run.add_argument(
        "--cache",
        metavar="PATH",
        help="spec-fingerprint result cache (JSONL): reuse a cached record "
        "instead of simulating, insert fresh results",
    )
    p_run.add_argument(
        "--telemetry",
        action="store_true",
        help="collect runtime telemetry; deterministic sections are embedded "
        "under run.telemetry in the record",
    )
    p_run.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write the full telemetry snapshot (incl. wall-clock spans) to "
        "this JSON file (implies nothing unless --telemetry is set)",
    )
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run a seeded parameter sweep (resumable, shardable, cached)"
    )
    p_sweep.add_argument(
        "scenario",
        nargs="?",
        help="registered scenario name (omit only with --compact)",
    )
    p_sweep.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    p_sweep.add_argument(
        "--reps", type=int, default=8, help="seeded replications per grid point (default 8)"
    )
    p_sweep.add_argument("--seed", type=int, default=1, help="base seed (run i uses seed+i)")
    p_sweep.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help=(
            "sweep axis; repeat for a cartesian product. Dotted keys sweep "
            "spec override paths (e.g. flows.0.params.max_rtt=0.25,0.5)"
        ),
    )
    p_sweep.add_argument("--set", action="append", default=[], metavar="KEY=VALUE")
    p_sweep.add_argument(
        "--override", action="append", default=[], metavar="PATH=VALUE", help=override_help
    )
    p_sweep.add_argument("--engine", default=None, help=engine_help)
    p_sweep.add_argument("--out", help="JSONL output path (default results/<scenario>-sweep.jsonl)")
    p_sweep.add_argument("--quiet", action="store_true", help="suppress per-run progress")
    p_sweep.add_argument(
        "--shard",
        metavar="I/N",
        help="execute only runs with index %% N == I (multi-host fan-out; "
        "merge the shard stores afterwards with --compact)",
    )
    p_sweep.add_argument(
        "--cache",
        metavar="PATH",
        help="spec-fingerprint result cache (JSONL): cached runs skip "
        "simulation, fresh results are inserted for later invocations",
    )
    p_sweep.add_argument(
        "--fresh",
        action="store_true",
        help="remove an existing store and manifest instead of resuming them",
    )
    p_sweep.add_argument(
        "--stop-after",
        type=int,
        metavar="N",
        help="commit at most N new runs, then stop (re-run to resume)",
    )
    p_sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="retries per failed run before recording a failure entry (default 2)",
    )
    p_sweep.add_argument(
        "--compact",
        nargs="+",
        metavar="SHARD",
        help="merge the given shard JSONL stores into --out (sorted by run "
        "index, deduplicated) instead of running a sweep, and report "
        "fleet-level wall/retry skew from the shard manifests",
    )
    p_sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="collect runtime telemetry in every run (workers inherit it); "
        "deterministic sections land under run.telemetry in each record",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_profile = sub.add_parser(
        "profile",
        help="run one scenario with telemetry on and print a phase/category "
        "breakdown (optionally under cProfile)",
    )
    p_profile.add_argument("scenario")
    p_profile.add_argument("--seed", type=int, default=1)
    p_profile.add_argument("--set", action="append", default=[], metavar="KEY=VALUE")
    p_profile.add_argument(
        "--override", action="append", default=[], metavar="PATH=VALUE", help=override_help
    )
    p_profile.add_argument("--engine", default=None, help=engine_help)
    p_profile.add_argument(
        "--quick",
        action="store_true",
        help="cap the simulated duration at 10 s (CI-sized profile)",
    )
    p_profile.add_argument(
        "--cprofile",
        metavar="PATH",
        help="also run under cProfile and dump raw stats to PATH",
    )
    p_profile.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows in the cProfile table (default 20)",
    )
    p_profile.add_argument(
        "--json",
        metavar="PATH",
        help="write the full telemetry snapshot to this JSON file",
    )
    p_profile.set_defaults(func=cmd_profile)

    p_telemetry = sub.add_parser(
        "telemetry",
        help="export telemetry from a snapshot JSON, a record, or a JSONL "
        "store (merged fleet-wide) as JSON or Prometheus text",
    )
    p_telemetry.add_argument(
        "source",
        help="snapshot JSON (repro profile --json), a record JSON, or a "
        "JSONL result store whose run.telemetry sections are merged",
    )
    p_telemetry.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="output format (default json; prom = Prometheus text format)",
    )
    p_telemetry.add_argument(
        "--prefix",
        default="repro",
        help="metric-name prefix for Prometheus output (default repro)",
    )
    p_telemetry.set_defaults(func=cmd_telemetry)

    p_report = sub.add_parser(
        "report",
        help="build paper-figure datasets and plots from scenario runs",
    )
    p_report.add_argument(
        "figure", nargs="*", help="figure names (default: all; see --list)"
    )
    p_report.add_argument("--list", action="store_true", help="list available figures")
    p_report.add_argument(
        "--quick", action="store_true", help="short CI-sized runs with wider tolerances"
    )
    p_report.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when a figure's sim-vs-model assertions are violated",
    )
    p_report.add_argument(
        "--out",
        default=REPORT_OUT_DIR,
        help=f"output directory for datasets/plots (default {REPORT_OUT_DIR})",
    )
    p_report.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the simulations"
    )
    p_report.add_argument(
        "--reuse",
        action="store_true",
        help="reuse the JSONL run data of a previous identical invocation",
    )
    p_report.add_argument(
        "--no-plots", action="store_true", help="write datasets only, skip PNG rendering"
    )
    p_report.add_argument(
        "--cache",
        metavar="PATH",
        help="spec-fingerprint result cache (JSONL) shared with run/sweep: "
        "figure runs already cached skip simulation",
    )
    p_report.set_defaults(func=cmd_report)

    p_bench = sub.add_parser(
        "bench", help="run pinned-seed performance benchmarks (BENCH_*.json)"
    )
    p_bench.add_argument(
        "workload", nargs="*", help="workload names (default: all; see --list)"
    )
    p_bench.add_argument("--list", action="store_true", help="list available workloads")
    p_bench.add_argument(
        "--quick", action="store_true", help="short CI-sized variants of each workload"
    )
    p_bench.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on events/sec regression against the committed baseline",
    )
    p_bench.add_argument(
        "--out",
        default=BENCH_OUT_DIR,
        help=f"directory for BENCH_<name>.json (default {BENCH_OUT_DIR})",
    )
    p_bench.add_argument(
        "--baseline",
        default=None,
        help="baseline directory (default benchmarks/perf/baseline/<quick|full>)",
    )
    p_bench.add_argument(
        "--threshold",
        type=float,
        default=BENCH_THRESHOLD,
        help="allowed fractional events/sec drop before --check fails "
        f"(default {BENCH_THRESHOLD})",
    )
    p_bench.set_defaults(func=cmd_bench)

    # ------------------------------------------------------------- service

    from repro.service.client import DEFAULT_SERVER, ENV_SERVER
    from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

    server_help = (
        f"service address: http://host:port or unix:///path.sock "
        f"(default ${ENV_SERVER} or {DEFAULT_SERVER})"
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the simulation service daemon (control API + worker pool)",
    )
    p_serve.add_argument("--host", default=DEFAULT_HOST, help=f"TCP bind host (default {DEFAULT_HOST})")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT, help=f"TCP port (default {DEFAULT_PORT})")
    p_serve.add_argument(
        "--uds",
        metavar="PATH",
        help="listen on a Unix domain socket instead of TCP",
    )
    p_serve.add_argument(
        "--data",
        default=os.path.join("results", "service"),
        metavar="DIR",
        help="state directory: job journal, result cache, record store "
        "(default results/service)",
    )
    p_serve.add_argument("--jobs", type=int, default=2, help="worker processes (default 2)")
    p_serve.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="retries per failing unit before it is recorded as failed (default 2)",
    )
    p_serve.add_argument("--verbose", action="store_true", help="log every HTTP request")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a run or sweep grid to a running service"
    )
    p_submit.add_argument("scenario")
    p_submit.add_argument("--server", default=None, help=server_help)
    p_submit.add_argument("--seed", type=int, default=1)
    p_submit.add_argument("--set", action="append", default=[], metavar="KEY=VALUE")
    p_submit.add_argument(
        "--override", action="append", default=[], metavar="PATH=VALUE", help=override_help
    )
    p_submit.add_argument("--engine", default=None, help=engine_help)
    p_submit.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="sweep axis (repeatable); makes the job a sweep grid",
    )
    p_submit.add_argument(
        "--reps", type=int, default=1, help="seeded replications per grid point (default 1)"
    )
    p_submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes, then print its record(s)",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None, help="give up --wait after this many seconds"
    )
    p_submit.add_argument(
        "--json", action="store_true", help="with --wait: print raw record JSON lines"
    )
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="show service job status")
    p_status.add_argument("job", nargs="?", help="job id (default: list all jobs)")
    p_status.add_argument("--server", default=None, help=server_help)
    p_status.add_argument("--json", action="store_true", help="print raw JSON")
    p_status.set_defaults(func=cmd_status)

    p_cancel = sub.add_parser("cancel", help="cancel a service job")
    p_cancel.add_argument("job")
    p_cancel.add_argument("--server", default=None, help=server_help)
    p_cancel.set_defaults(func=cmd_cancel)

    p_watch = sub.add_parser(
        "watch", help="stream a job's progress events (Server-Sent Events)"
    )
    p_watch.add_argument("job")
    p_watch.add_argument("--server", default=None, help=server_help)
    p_watch.add_argument(
        "--from-seq", type=int, default=0, help="replay events starting at this sequence"
    )
    p_watch.add_argument("--json", action="store_true", help="print events as JSON lines")
    p_watch.set_defaults(func=cmd_watch)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
