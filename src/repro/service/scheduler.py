"""Job scheduler: a persistent worker pool with coalescing and recovery.

The scheduler owns the daemon's long-lived state: the job table, the
fingerprint-keyed task queue, one :class:`ProcessPoolExecutor` shared by
every job, the spec-fingerprint :class:`~repro.scenarios.cache.ResultCache`,
the service :class:`~repro.scenarios.store.ResultStore` and the
:class:`~repro.service.jobs.JobJournal`.

Execution reuses the sweep runner's machinery wholesale: units are
:class:`~repro.scenarios.sweep.SweepRun` objects executed by the same
:func:`~repro.scenarios.sweep.pool_execute` worker entry point (never
raises; failures come back as error strings and are retried up to
``max_retries``), and a worker that dies abruptly breaks the pool, which
is rebuilt with blame attached to the fingerprint whose future broke —
after ``max_retries`` rebuilds that unit is failed instead of resubmitted,
so one poisonous spec cannot wedge the service.

Deduplication is the service's headline trick: tasks are keyed by spec
fingerprint, so two clients submitting the same ``(spec, seed)`` share one
simulation (*in-flight coalescing*, counted in ``service.units_coalesced``)
and anything already in the result cache is answered instantly without
touching the pool at all.

Threading model: HTTP handler threads call :meth:`submit`, :meth:`cancel`
and the read accessors; one internal dispatcher thread consumes an event
queue (new units, future completions, drain).  All mutable state is
guarded by one re-entrant lock — the per-event critical sections are tiny
compared to a simulation, so contention is irrelevant.
"""

from __future__ import annotations

import copy
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.scenarios.cache import ResultCache, pure_record
from repro.scenarios.store import ResultStore
from repro.scenarios.sweep import (
    SweepRun,
    failure_record,
    pool_execute,
    resolve_spec_cached,
    run_fingerprint,
    stamp_record,
)
from repro.service.jobs import Job, JobJournal, expand_payload
from repro.telemetry.core import Telemetry


class ServiceDraining(RuntimeError):
    """Raised by :meth:`Scheduler.submit` once a drain has begun (HTTP 503)."""


class UnknownJob(KeyError):
    """Raised for job ids the scheduler has never seen (HTTP 404)."""


@dataclass
class _Task:
    """One distinct (spec, seed) simulation and the units waiting on it."""

    fingerprint: str
    run: SweepRun
    waiters: List[Tuple[Job, int]] = field(default_factory=list)
    attempts: int = 0


class Scheduler:
    """Persistent job scheduler behind the HTTP control API."""

    #: In-flight window multiplier (tasks dispatched per worker slot).
    WINDOW = 2

    def __init__(
        self,
        data_dir: str,
        workers: int = 2,
        max_retries: int = 2,
        verbose: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.workers = workers
        self.max_retries = max_retries
        self.verbose = verbose
        self.cache = ResultCache(os.path.join(data_dir, "cache.jsonl"))
        self.store = ResultStore(os.path.join(data_dir, "store.jsonl"))
        self.journal = JobJournal(os.path.join(data_dir, "journal.jsonl"))
        self.telemetry = Telemetry()
        self.started = time.time()

        self._lock = threading.RLock()
        self._jobs: "Dict[str, Job]" = {}
        self._results: Dict[str, Dict[int, Dict[str, Any]]] = {}
        self._tasks: Dict[str, _Task] = {}
        self._pending: "deque[str]" = deque()
        self._inflight: Dict[str, Future] = {}
        self._generation = 0
        self._counter = 0
        self._draining = False
        self._drained = threading.Event()
        self._events: "queue.Queue[Tuple[str, Any]]" = queue.Queue()
        self._executor: Optional[ProcessPoolExecutor] = None

        self._recover()
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------ client API

    @property
    def draining(self) -> bool:
        return self._draining

    def submit(self, payload: Dict[str, Any]) -> Job:
        """Validate, journal and enqueue one submission; returns its Job.

        Raises :class:`ServiceDraining` during shutdown and ``ValueError``
        (or ``KeyError`` for unknown scenario names) on malformed payloads.
        """
        if self._draining:
            raise ServiceDraining("service is draining; not accepting submissions")
        units = expand_payload(payload)
        fingerprints = [run_fingerprint(unit) for unit in units]
        with self._lock:
            self._counter += 1
            job = Job(
                id=f"j{self._counter:05d}",
                payload=dict(payload),
                units=units,
                fingerprints=fingerprints,
            )
            self._jobs[job.id] = job
            self._results[job.id] = {}
        self.journal.append({"op": "submit", "id": job.id, "payload": job.payload})
        self.telemetry.inc("service.jobs_submitted")
        self.telemetry.inc("service.units_submitted", len(units))
        job.emit("queued", units=job.total)
        self._events.put(("units", (job, list(range(job.total)))))
        return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns False when it already reached a terminal state.

        Pending units are dropped immediately.  A unit already in flight
        cannot be preempted inside its worker process — its result is still
        cached on arrival (it is a pure record) but no longer delivered to
        this job.  Coalesced units of *other* jobs sharing a fingerprint
        keep waiting and are unaffected.
        """
        with self._lock:
            job = self.job(job_id)
            if job.terminal:
                return False
            job.state = "cancelled"
            job.finished = time.time()
            for task in self._tasks.values():
                task.waiters = [(j, i) for j, i in task.waiters if j is not job]
        self.journal.append({"op": "state", "id": job.id, "state": "cancelled"})
        self.telemetry.inc("service.jobs_cancelled")
        job.emit("state", state="cancelled", completed=job.completed, total=job.total)
        return True

    def result(self, job_id: str) -> Optional[List[Dict[str, Any]]]:
        """Stamped records of a finished job in unit order, or None if unfinished.

        After a restart the in-memory record table is empty for replayed
        jobs; records are then reconstructed from the result cache by
        fingerprint — byte-identical, since stamping is deterministic.
        """
        with self._lock:
            job = self.job(job_id)
            if not job.terminal:
                return None
            held = self._results.get(job.id, {})
            records: List[Dict[str, Any]] = []
            for index in sorted(job.done_units | set(job.failed_units)):
                record = held.get(index)
                if record is None:
                    record = self._reconstruct(job, index)
                if record is not None:
                    records.append(record)
            return records

    def _reconstruct(self, job: Job, index: int) -> Optional[Dict[str, Any]]:
        if index in job.failed_units:
            return failure_record(
                job.units[index], job.failed_units[index], self.max_retries
            )
        pure = self.cache.get(job.fingerprints[index])
        if pure is None:
            return None
        return self._stamp(job, index, pure)

    def _stamp(self, job: Job, index: int, pure: Dict[str, Any]) -> Dict[str, Any]:
        run = job.units[index]
        spec = resolve_spec_cached(run)
        return stamp_record(copy.deepcopy(pure), run, spec, job.fingerprints[index])

    # ---------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "jobs": by_state,
                "pending_tasks": len(self._pending),
                "inflight_tasks": len(self._inflight),
                "distinct_tasks": len(self._tasks),
                "cache_entries": len(self.cache),
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "workers": self.workers,
                "draining": self._draining,
                "uptime_s": round(time.time() - self.started, 3),
            }

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Service counters plus live queue gauges (for ``/metrics``)."""
        with self._lock:
            self.telemetry.gauge("service.jobs_active", sum(
                1 for job in self._jobs.values() if not job.terminal
            ))
            self.telemetry.gauge("service.tasks_pending", len(self._pending))
            self.telemetry.gauge("service.tasks_inflight", len(self._inflight))
            self.telemetry.gauge("service.cache_entries", len(self.cache))
            return self.telemetry.snapshot()

    # ------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Rebuild the job table from the journal and requeue unfinished work."""
        entries = JobJournal.replay(self.journal.path)
        if not entries:
            return
        recovered = 0
        for entry in entries:
            op = entry.get("op")
            if op == "submit":
                job_id = entry["id"]
                payload = entry.get("payload") or {}
                try:
                    units = expand_payload(payload)
                    fingerprints = [run_fingerprint(unit) for unit in units]
                except Exception as exc:  # scenario gone, spec invalid, ...
                    job = Job(id=job_id, payload=dict(payload), units=[], fingerprints=[])
                    job.state = "failed"
                    job.failed_units[0] = f"unrecoverable payload: {exc}"
                    self._jobs[job_id] = job
                    self._results[job_id] = {}
                    continue
                job = Job(
                    id=job_id,
                    payload=dict(payload),
                    units=units,
                    fingerprints=fingerprints,
                )
                self._jobs[job_id] = job
                self._results[job_id] = {}
            elif op == "unit":
                job = self._jobs.get(entry.get("id"))
                if job is None or not 0 <= entry.get("unit", -1) < job.total:
                    continue
                index = entry["unit"]
                if entry.get("status") == "failed":
                    job.failed_units[index] = entry.get("error", "unknown")
                else:
                    job.done_units.add(index)
                    job.sources[index] = entry.get("source", "executed")
            elif op == "state":
                job = self._jobs.get(entry.get("id"))
                if job is not None and entry.get("state") in (
                    "queued", "running", "done", "failed", "cancelled"
                ):
                    job.state = entry["state"]
                    if job.terminal:
                        job.finished = entry.get("ts")
        for job_id, job in self._jobs.items():
            number = int(job_id[1:]) if job_id[1:].isdigit() else 0
            self._counter = max(self._counter, number)
            if job.terminal:
                continue
            remaining = [
                index
                for index in range(job.total)
                if index not in job.done_units and index not in job.failed_units
            ]
            if not remaining:
                self._finalise(job)
                continue
            recovered += 1
            job.emit(
                "recovered", completed=job.completed, total=job.total, state=job.state
            )
            self._events.put(("units", (job, remaining)))
        if recovered:
            self.telemetry.inc("service.jobs_recovered", recovered)
        if self.verbose and self._jobs:
            import sys

            print(
                f"journal replay: {len(self._jobs)} job(s), "
                f"{recovered} requeued",
                file=sys.stderr,
            )

    # ------------------------------------------------------------ internals

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def _loop(self) -> None:
        while True:
            kind, arg = self._events.get()
            if kind == "stop":
                break
            try:
                if kind == "units":
                    job, indices = arg
                    self._handle_units(job, indices)
                elif kind == "done":
                    self._handle_done(*arg)
                # "poke" falls through to the drain check below.
            except Exception:  # pragma: no cover - keep the dispatcher alive
                import traceback

                traceback.print_exc()
            with self._lock:
                if self._draining and not self._inflight:
                    self._drained.set()

    def _handle_units(self, job: Job, indices: List[int]) -> None:
        with self._lock:
            if job.terminal:
                return
            for index in indices:
                if job.terminal:
                    break
                fingerprint = job.fingerprints[index]
                pure = self.cache.get(fingerprint)
                if pure is not None:
                    self.telemetry.inc("service.units_cached")
                    self._complete_unit(job, index, pure, source="cached")
                    continue
                task = self._tasks.get(fingerprint)
                if task is not None:
                    task.waiters.append((job, index))
                    self.telemetry.inc("service.units_coalesced")
                    job.emit("coalesced", unit=index, fingerprint=fingerprint)
                    continue
                self._tasks[fingerprint] = _Task(
                    fingerprint=fingerprint,
                    run=job.units[index],
                    waiters=[(job, index)],
                )
                self._pending.append(fingerprint)
            if not job.terminal and job.state == "queued":
                job.state = "running"
                self.journal.append({"op": "state", "id": job.id, "state": "running"})
                job.emit("state", state="running", completed=job.completed, total=job.total)
        self._dispatch()

    def _dispatch(self) -> None:
        with self._lock:
            if self._draining:
                return
            window = self.workers * self.WINDOW
            while self._pending and len(self._inflight) < window:
                fingerprint = self._pending.popleft()
                task = self._tasks.get(fingerprint)
                if task is None or fingerprint in self._inflight:
                    continue
                if not task.waiters:  # every waiter cancelled before dispatch
                    del self._tasks[fingerprint]
                    continue
                future = self._ensure_executor().submit(pool_execute, task.run)
                self._inflight[fingerprint] = future
                generation = self._generation
                future.add_done_callback(
                    lambda f, fp=fingerprint, gen=generation: self._events.put(
                        ("done", (fp, gen, f))
                    )
                )

    def _handle_done(self, fingerprint: str, generation: int, future: Future) -> None:
        with self._lock:
            if generation != self._generation:
                return  # stale future from before a pool rebuild
            self._inflight.pop(fingerprint, None)
            task = self._tasks.get(fingerprint)
            if task is None:
                return
            try:
                _index, record, error, _wall = future.result()
            except BrokenProcessPool:
                self._rebuild_pool(blame=fingerprint)
                return
            except Exception as exc:  # cancelled futures during shutdown etc.
                record, error = None, f"{type(exc).__name__}: {exc}"
            if error is not None:
                task.attempts += 1
                if task.attempts <= self.max_retries:
                    self.telemetry.inc("service.units_retried")
                    self._pending.appendleft(fingerprint)
                else:
                    self._fail_task(task, error)
                    del self._tasks[fingerprint]
            else:
                pure = pure_record(record)
                self.cache.put(fingerprint, pure)
                self.telemetry.inc("service.units_executed")
                for position, (job, index) in enumerate(task.waiters):
                    if job.terminal:
                        continue
                    source = "executed" if position == 0 else "coalesced"
                    self._complete_unit(job, index, pure, source=source)
                del self._tasks[fingerprint]
        self._dispatch()

    def _rebuild_pool(self, blame: str) -> None:
        """Replace a broken executor and resubmit its in-flight tasks."""
        self.telemetry.inc("service.pool_rebuilds")
        self._generation += 1
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        survivors = list(self._inflight)
        self._inflight.clear()
        for fingerprint in survivors:
            task = self._tasks.get(fingerprint)
            if task is None:
                continue
            if fingerprint == blame:
                task.attempts += 1
                if task.attempts > self.max_retries:
                    self._fail_task(
                        task,
                        "worker process died while executing this run "
                        f"({task.attempts} attempts)",
                    )
                    del self._tasks[fingerprint]
                    continue
                self.telemetry.inc("service.units_retried")
            self._pending.appendleft(fingerprint)
        self._dispatch()

    def _fail_task(self, task: _Task, error: str) -> None:
        for job, index in task.waiters:
            if job.terminal:
                continue
            job.failed_units[index] = error
            self._results[job.id][index] = failure_record(
                job.units[index], error, self.max_retries
            )
            self.telemetry.inc("service.units_failed")
            self.journal.append(
                {
                    "op": "unit",
                    "id": job.id,
                    "unit": index,
                    "status": "failed",
                    "fingerprint": task.fingerprint,
                    "error": error,
                }
            )
            job.emit(
                "unit",
                unit=index,
                status="failed",
                error=error,
                completed=job.completed,
                total=job.total,
            )
            if job.completed >= job.total:
                self._finalise(job)

    def _complete_unit(
        self, job: Job, index: int, pure: Dict[str, Any], source: str
    ) -> None:
        stamped = self._stamp(job, index, pure)
        self.store.append(stamped)
        job.done_units.add(index)
        job.sources[index] = source
        self._results[job.id][index] = stamped
        self.journal.append(
            {
                "op": "unit",
                "id": job.id,
                "unit": index,
                "status": "done",
                "fingerprint": job.fingerprints[index],
                "source": source,
            }
        )
        job.emit(
            "unit",
            unit=index,
            status="done",
            source=source,
            completed=job.completed,
            total=job.total,
            tfmcc_mean_bps=stamped.get("tfmcc_mean_bps"),
        )
        if job.completed >= job.total:
            self._finalise(job)

    def _finalise(self, job: Job) -> None:
        job.state = "failed" if job.failed_units else "done"
        job.finished = time.time()
        self.journal.append({"op": "state", "id": job.id, "state": job.state})
        self.telemetry.inc(f"service.jobs_{job.state}")
        job.emit("state", state=job.state, completed=job.completed, total=job.total)

    # ------------------------------------------------------------- shutdown

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new work, let in-flight units finish, checkpoint the journal.

        Queued-but-undispatched units stay in the journal and resume on the
        next start.  Returns True when the pool drained within ``timeout``.
        """
        self._draining = True
        self._events.put(("poke", None))
        drained = self._drained.wait(timeout)
        with self._lock:
            self.journal.compact(self._jobs)
        if self._executor is not None:
            self._executor.shutdown(wait=drained, cancel_futures=not drained)
            self._executor = None
        return drained

    def close(self) -> None:
        """Stop the dispatcher thread and release the journal handle."""
        self._events.put(("stop", None))
        self._thread.join(timeout=10.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.journal.close()
