"""Service job model and the crash-safe job journal.

A *job* is one client submission: a single run (``grid`` absent,
``replications == 1``) or a sweep grid.  Either way it expands — through
the same :class:`~repro.scenarios.sweep.SweepRunner` machinery the batch
CLI uses — into an ordered list of :class:`~repro.scenarios.sweep.SweepRun`
units, each the pure function ``(spec, seed)`` identified by its spec
fingerprint.  The scheduler executes units; the job aggregates their
completion into a state machine::

    queued -> running -> done | failed | cancelled

Every transition appends one line to the :class:`JobJournal`, a flushed
append-only JSONL file next to the service's ResultStore.  The journal is
the restart story: replaying it reconstructs every job's payload and the
set of units already committed, so a daemon that was SIGKILLed resumes its
queued and running jobs exactly where they stopped (completed units are
answered from the result cache without simulating).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set

from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import SweepRun, SweepRunner

#: Job lifecycle states; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset(("done", "failed", "cancelled"))


def expand_payload(payload: Mapping[str, Any]) -> List[SweepRun]:
    """Expand a submission payload into its ordered unit list.

    The payload mirrors the batch CLI's vocabulary::

        {"scenario": "fairness",          # registry name, or
         "spec": {...},                   # a concrete ScenarioSpec dict
         "seed": 1,                       # base seed (unit i uses seed+i)
         "params": {"num_tcp": 2,         # factory params and dotted
                    "flows.0.params.max_rtt": 0.3},   # override paths
         "grid": {"num_tcp": [2, 4]},     # optional sweep axes
         "replications": 1}

    Validation is eager and raises ``ValueError``/``KeyError`` on malformed
    payloads (unknown scenario, bad params, missing scenario/spec), which
    the HTTP layer maps to a 400 response.  Expansion is deterministic, so
    replaying a journal reproduces the same units and fingerprints.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("submission payload must be a JSON object")
    unknown = set(payload) - {
        "scenario", "spec", "seed", "params", "grid", "replications"
    }
    if unknown:
        raise ValueError(f"unknown submission fields: {sorted(unknown)}")
    scenario = payload.get("scenario")
    spec_dict = payload.get("spec")
    if (scenario is None) == (spec_dict is None):
        raise ValueError("exactly one of 'scenario' or 'spec' is required")
    seed = payload.get("seed", 1)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValueError(f"'seed' must be an integer, got {seed!r}")
    replications = payload.get("replications", 1)
    if not isinstance(replications, int) or replications < 1:
        raise ValueError(f"'replications' must be a positive integer, got {replications!r}")
    params = payload.get("params") or {}
    grid = payload.get("grid") or {}
    if not isinstance(params, Mapping):
        raise ValueError("'params' must be an object")
    if not isinstance(grid, Mapping) or not all(
        isinstance(v, (list, tuple)) for v in grid.values()
    ):
        raise ValueError("'grid' must map parameter names to value lists")
    target: Any = scenario
    if spec_dict is not None:
        target = ScenarioSpec.from_dict(spec_dict)  # validates the spec
    runner = SweepRunner(
        target,
        grid=grid,
        params=params,
        replications=replications,
        base_seed=seed,
    )
    return runner.runs()


@dataclass
class Job:
    """One submission and its aggregate progress (thread-safe via the owner)."""

    id: str
    payload: Dict[str, Any]
    units: List[SweepRun]
    fingerprints: List[str]
    state: str = "queued"
    created: float = field(default_factory=time.time)
    finished: Optional[float] = None
    done_units: Set[int] = field(default_factory=set)
    failed_units: Dict[int, str] = field(default_factory=dict)
    #: Per-unit record source: "executed", "cached", "coalesced".
    sources: Dict[int, str] = field(default_factory=dict)
    #: Ordered event log for SSE replay; guarded by :attr:`cond`.
    events: List[Dict[str, Any]] = field(default_factory=list)
    cond: threading.Condition = field(default_factory=threading.Condition)

    @property
    def total(self) -> int:
        return len(self.units)

    @property
    def completed(self) -> int:
        return len(self.done_units) + len(self.failed_units)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def emit(self, event: str, **data: Any) -> Dict[str, Any]:
        """Append one SSE event (sequence-numbered) and wake watchers."""
        with self.cond:
            entry = {"seq": len(self.events), "event": event, **data}
            self.events.append(entry)
            self.cond.notify_all()
        return entry

    def describe(self) -> Dict[str, Any]:
        """JSON status view served by ``GET /v1/jobs/<id>``."""
        return {
            "id": self.id,
            "state": self.state,
            "scenario": self.payload.get("scenario")
            or (self.payload.get("spec") or {}).get("name"),
            "seed": self.payload.get("seed", 1),
            "units": self.total,
            "completed": self.completed,
            "failed": len(self.failed_units),
            "sources": {
                source: sum(1 for s in self.sources.values() if s == source)
                for source in ("executed", "cached", "coalesced")
            },
            "fingerprints": self.fingerprints,
            "created": round(self.created, 3),
            "finished": round(self.finished, 3) if self.finished else None,
        }


class JobJournal:
    """Flushed append-only JSONL journal of job submissions and transitions.

    Entry shapes (one JSON object per line, ``ts`` added automatically)::

        {"op": "submit", "id": ..., "payload": {...}}
        {"op": "unit", "id": ..., "unit": 3, "status": "done"|"failed",
         "fingerprint": ..., "source": ..., "error": ...}
        {"op": "state", "id": ..., "state": "running"|"done"|...}
        {"op": "drain"}

    Lines are flushed as written, so a SIGKILL loses at most the line in
    flight; :meth:`replay` tolerates a truncated tail.  :meth:`compact`
    rewrites the journal to its minimal equivalent form (one submit + the
    surviving unit/state entries per job) — the graceful-shutdown
    checkpoint.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def append(self, entry: Mapping[str, Any]) -> None:
        line = json.dumps(
            {"ts": round(time.time(), 3), **entry},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - close failures are best-effort
                pass

    @staticmethod
    def replay(path: str) -> List[Dict[str, Any]]:
        """All parseable journal entries in order (truncated tail skipped)."""
        entries: List[Dict[str, Any]] = []
        if not os.path.exists(path):
            return entries
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # killed mid-write: everything after is suspect
                if isinstance(entry, dict) and "op" in entry:
                    entries.append(entry)
        return entries

    def compact(self, jobs: Mapping[str, "Job"]) -> None:
        """Atomically rewrite the journal to reflect current job state."""
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for job in sorted(jobs.values(), key=lambda j: j.id):
                rows: List[Dict[str, Any]] = [
                    {"op": "submit", "id": job.id, "payload": job.payload}
                ]
                for unit in sorted(job.done_units):
                    rows.append(
                        {
                            "op": "unit",
                            "id": job.id,
                            "unit": unit,
                            "status": "done",
                            "fingerprint": job.fingerprints[unit],
                            "source": job.sources.get(unit, "executed"),
                        }
                    )
                for unit, error in sorted(job.failed_units.items()):
                    rows.append(
                        {
                            "op": "unit",
                            "id": job.id,
                            "unit": unit,
                            "status": "failed",
                            "fingerprint": job.fingerprints[unit],
                            "error": error,
                        }
                    )
                rows.append({"op": "state", "id": job.id, "state": job.state})
                for row in rows:
                    fh.write(
                        json.dumps(
                            {"ts": round(time.time(), 3), **row},
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
        with self._lock:
            self._fh.close()
            os.replace(tmp, self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
