"""Long-running simulation service: daemon, scheduler, job model, client.

* :mod:`repro.service.server` — ``repro serve``: HTTP/UDS control API with
  SSE progress streaming and Prometheus ``/metrics``,
* :mod:`repro.service.scheduler` — persistent worker pool with fingerprint
  coalescing, result-cache answers and journal-driven crash recovery,
* :mod:`repro.service.jobs` — job state machine and the crash-safe journal,
* :mod:`repro.service.client` — :class:`ServiceClient` used by the
  ``repro submit/status/cancel/watch`` subcommands.

Quick use::

    from repro.service import ReproService, ServiceClient

    service = ReproService("results/service", uds="/tmp/repro.sock").start()
    client = ServiceClient(service.endpoint)
    job = client.submit({"scenario": "fairness", "seed": 3,
                         "params": {"duration": 4.0}})
    client.wait(job["id"])
    record = client.result(job["id"])
"""

from repro.service.client import (
    DEFAULT_SERVER,
    ENV_SERVER,
    ServiceClient,
    ServiceError,
    default_server,
)
from repro.service.jobs import Job, JobJournal, expand_payload
from repro.service.scheduler import Scheduler, ServiceDraining, UnknownJob
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT, ReproService

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_SERVER",
    "ENV_SERVER",
    "Job",
    "JobJournal",
    "ReproService",
    "Scheduler",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "UnknownJob",
    "default_server",
    "expand_payload",
]
