"""Client for the ``repro serve`` control API (stdlib ``http.client``).

Server addresses are either TCP (``http://127.0.0.1:8642``) or a Unix
domain socket (``unix:///path/to/repro.sock``); the environment variable
``REPRO_SERVER`` supplies the default for the CLI subcommands.

The client is deliberately thin: every method opens one connection, speaks
one request and returns parsed JSON.  :meth:`ServiceClient.watch` is the
exception — it holds the connection open and yields the job's Server-Sent
Events as ``(event, data)`` pairs until the job reaches a terminal state.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Environment variable naming the default server for CLI subcommands.
ENV_SERVER = "REPRO_SERVER"
DEFAULT_SERVER = "http://127.0.0.1:8642"


def default_server() -> str:
    return os.environ.get(ENV_SERVER, "").strip() or DEFAULT_SERVER


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket."""

    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


class ServiceClient:
    """Talk to one ``repro serve`` daemon."""

    def __init__(self, server: Optional[str] = None, timeout: float = 300.0):
        self.server = server or default_server()
        self.timeout = timeout
        if self.server.startswith("unix://"):
            self._uds: Optional[str] = self.server[len("unix://") :]
        elif self.server.startswith("http://"):
            self._uds = None
        else:
            raise ValueError(
                f"server must be http://host:port or unix:///path, got {self.server!r}"
            )

    # ------------------------------------------------------------ transport

    def _connection(self, timeout: Optional[float] = None) -> http.client.HTTPConnection:
        timeout = self.timeout if timeout is None else timeout
        if self._uds is not None:
            return _UnixHTTPConnection(self._uds, timeout=timeout)
        hostport = self.server[len("http://") :]
        host, _, port = hostport.partition(":")
        return http.client.HTTPConnection(
            host, int(port) if port else 80, timeout=timeout
        )

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Any]:
        conn = self._connection()
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8", errors="replace")
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"raw": raw}
            return response.status, data
        finally:
            conn.close()

    def _expect(self, status: int, data: Any, *ok: int) -> Any:
        if status not in ok:
            message = data.get("error", str(data)) if isinstance(data, dict) else str(data)
            raise ServiceError(status, message)
        return data

    # ------------------------------------------------------------- commands

    def health(self) -> Dict[str, Any]:
        return self._expect(*self.request("GET", "/healthz"), 200)

    def stats(self) -> Dict[str, Any]:
        return self._expect(*self.request("GET", "/v1/stats"), 200)

    def metrics(self) -> str:
        """Raw Prometheus exposition text from ``/metrics``."""
        conn = self._connection()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read().decode("utf-8", errors="replace")
            if response.status != 200:
                raise ServiceError(response.status, raw)
            return raw
        finally:
            conn.close()

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a run/sweep payload (see service.jobs.expand_payload)."""
        return self._expect(*self.request("POST", "/v1/jobs", payload), 202)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._expect(*self.request("GET", "/v1/jobs"), 200)["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._expect(*self.request("GET", f"/v1/jobs/{job_id}"), 200)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._expect(
            *self.request("POST", f"/v1/jobs/{job_id}/cancel"), 200, 409
        )

    def result(self, job_id: str) -> Any:
        """The finished job's record (single run) or ``{"records": [...]}``."""
        return self._expect(*self.request("GET", f"/v1/jobs/{job_id}/result"), 200)

    def drain(self) -> Dict[str, Any]:
        return self._expect(*self.request("POST", "/v1/admin/drain"), 202)

    # ------------------------------------------------------------ streaming

    def watch(
        self, job_id: str, from_seq: int = 0, timeout: Optional[float] = None
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield the job's SSE events as ``(event, data)`` until terminal.

        ``data`` carries the decoded JSON payload plus the event's sequence
        number under ``"seq"``.  The iterator ends when the server closes
        the stream (after the terminal ``state`` event).
        """
        conn = self._connection(timeout=timeout if timeout is not None else self.timeout)
        try:
            conn.request(
                "GET",
                f"/v1/jobs/{job_id}/events?from={from_seq}",
                headers={"Accept": "text/event-stream"},
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read().decode("utf-8", errors="replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except json.JSONDecodeError:
                    message = raw
                raise ServiceError(response.status, message)
            event: Dict[str, Any] = {}
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n")
                if line.startswith("id:"):
                    event["seq"] = int(line[3:].strip())
                elif line.startswith("event:"):
                    event["event"] = line[6:].strip()
                elif line.startswith("data:"):
                    event["data"] = json.loads(line[5:].strip())
                elif line == "" and event:
                    data = event.get("data", {})
                    if "seq" in event:
                        data = {**data, "seq": event["seq"]}
                    yield event.get("event", "message"), data
                    event = {}
        finally:
            conn.close()

    def wait(
        self, job_id: str, timeout: Optional[float] = None, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Block until the job is terminal; returns its final status view.

        Uses the SSE stream when possible and falls back to polling if the
        stream drops (e.g. the daemon restarted mid-job).
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            status = self.job(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            try:
                for event, data in self.watch(job_id, timeout=timeout):
                    if event == "state" and data.get("state") in (
                        "done", "failed", "cancelled"
                    ):
                        return self.job(job_id)
            except (ServiceError, OSError, http.client.HTTPException):
                pass
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} not finished after {timeout} s")
            time.sleep(poll)
