"""``repro serve``: the HTTP/UDS control plane of the simulation service.

Stdlib-only: a :class:`ThreadingHTTPServer` (TCP on localhost, or a Unix
domain socket for same-host clients) in front of one
:class:`~repro.service.scheduler.Scheduler`.  There is no authentication —
the daemon is designed for localhost/UDS deployment behind whatever
ingress the operator trusts.

Control API (all bodies JSON)::

    GET    /healthz               liveness + drain state
    GET    /metrics               Prometheus exposition: service counters
                                  merged with the fleet's run telemetry
    GET    /v1/stats              scheduler stats as JSON
    POST   /v1/jobs               submit a run or sweep grid -> job id
    GET    /v1/jobs               list jobs
    GET    /v1/jobs/<id>          job status
    POST   /v1/jobs/<id>/cancel   cancel (DELETE /v1/jobs/<id> works too)
    GET    /v1/jobs/<id>/result   records of a finished job (409 otherwise)
    GET    /v1/jobs/<id>/events   Server-Sent Events progress stream
    POST   /v1/admin/drain        begin a graceful drain (also SIGTERM/SIGINT)

Error mapping: malformed payloads are 400, unknown jobs 404, results of
unfinished jobs 409, submissions during drain 503.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse

from repro.service.jobs import Job
from repro.service.scheduler import Scheduler, ServiceDraining, UnknownJob
from repro.telemetry.core import merge_snapshots
from repro.telemetry.export import snapshot_from_source, to_prometheus

#: Default TCP endpoint (loopback only: the API is unauthenticated).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Largest accepted request body; a ScenarioSpec is a few KB, so anything
#: bigger than this is a client error rather than a legitimate submission.
MAX_BODY = 4 * 1024 * 1024


def _encode(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the scheduler (``self.server.scheduler``)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # ----------------------------------------------------------- plumbing

    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def address_string(self) -> str:  # UDS clients have no (host, port) pair
        if isinstance(self.client_address, str) or not self.client_address:
            return "uds"
        return super().address_string()

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _reply(self, status: int, payload: Any) -> None:
        body = _encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query: Dict[str, str] = {}
        for part in parsed.query.split("&"):
            key, _, value = part.partition("=")
            if key:
                query[key] = value
        return parsed.path.rstrip("/") or "/", query

    # ------------------------------------------------------------- methods

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, query = self._route()
        try:
            if path == "/healthz":
                scheduler = self.scheduler
                self._reply(
                    200,
                    {
                        "status": "draining" if scheduler.draining else "ok",
                        "uptime_s": scheduler.stats()["uptime_s"],
                    },
                )
            elif path == "/metrics":
                self._metrics()
            elif path == "/v1/stats":
                self._reply(200, self.scheduler.stats())
            elif path == "/v1/jobs":
                self._reply(
                    200, {"jobs": [job.describe() for job in self.scheduler.jobs()]}
                )
            elif path.startswith("/v1/jobs/") and path.endswith("/result"):
                self._result(path.split("/")[3])
            elif path.startswith("/v1/jobs/") and path.endswith("/events"):
                self._events(path.split("/")[3], query)
            elif path.startswith("/v1/jobs/"):
                self._reply(200, self.scheduler.job(path.split("/")[3]).describe())
            else:
                self._error(404, f"no such endpoint: {path}")
        except UnknownJob as exc:
            self._error(404, f"unknown job: {exc.args[0]}")
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _query = self._route()
        try:
            if path == "/v1/jobs":
                payload = self._body()
                job = self.scheduler.submit(payload)
                self._reply(202, job.describe())
            elif path == "/v1/admin/drain":
                self.server.request_drain()  # type: ignore[attr-defined]
                self._reply(202, {"status": "draining"})
            elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                self._cancel(path.split("/")[3])
            else:
                self._error(404, f"no such endpoint: {path}")
        except ServiceDraining as exc:
            self._error(503, str(exc))
        except UnknownJob as exc:
            self._error(404, f"unknown job: {exc.args[0]}")
        except (KeyError, ValueError) as exc:
            self._error(400, f"invalid submission: {exc}")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        path, _query = self._route()
        try:
            if path.startswith("/v1/jobs/"):
                self._cancel(path.split("/")[3])
            else:
                self._error(404, f"no such endpoint: {path}")
        except UnknownJob as exc:
            self._error(404, f"unknown job: {exc.args[0]}")

    # ------------------------------------------------------------ handlers

    def _cancel(self, job_id: str) -> None:
        cancelled = self.scheduler.cancel(job_id)
        job = self.scheduler.job(job_id)
        status = 200 if cancelled else 409
        self._reply(status, {"cancelled": cancelled, **job.describe()})

    def _result(self, job_id: str) -> None:
        records = self.scheduler.result(job_id)
        if records is None:
            job = self.scheduler.job(job_id)
            self._error(409, f"job {job_id} is {job.state}; result not ready")
            return
        job = self.scheduler.job(job_id)
        if job.total == 1 and len(records) == 1:
            self._reply(200, records[0])
        else:
            self._reply(200, {"id": job_id, "records": records})

    def _metrics(self) -> None:
        scheduler = self.scheduler
        sections = [scheduler.telemetry_snapshot()]
        # Fleet view: every completed record's run.telemetry section (present
        # when the daemon runs with telemetry enabled) merged into one
        # exposition alongside the service's own counters.
        if os.path.exists(scheduler.store.path):
            fleet = snapshot_from_source(scheduler.store.path)
            if fleet:
                sections.append(fleet)
        body = to_prometheus(merge_snapshots(sections)).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _events(self, job_id: str, query: Dict[str, str]) -> None:
        """Server-Sent Events: replay the job's event log, then follow live.

        Events are sequence-numbered (``id:`` line), so ordering is
        verifiable client-side and reconnects can resume via ``?from=`` or
        the standard ``Last-Event-ID`` header.  The stream ends after the
        terminal state event.
        """
        job = self.scheduler.job(job_id)
        start = 0
        last_id = self.headers.get("Last-Event-ID")
        if last_id is not None and last_id.isdigit():
            start = int(last_id) + 1
        if query.get("from", "").isdigit():
            start = int(query["from"])
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        next_seq = start
        try:
            while True:
                with job.cond:
                    while len(job.events) <= next_seq and not job.terminal:
                        job.cond.wait(timeout=1.0)
                    batch = job.events[next_seq:]
                    terminal = job.terminal
                for event in batch:
                    data = {k: v for k, v in event.items() if k not in ("seq", "event")}
                    chunk = (
                        f"id: {event['seq']}\n"
                        f"event: {event['event']}\n"
                        f"data: {json.dumps(data, sort_keys=True)}\n\n"
                    )
                    self.wfile.write(chunk.encode("utf-8"))
                    next_seq = event["seq"] + 1
                self.wfile.flush()
                if terminal and next_seq >= len(job.events):
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass
        self.close_connection = True


class ServiceTCPServer(ThreadingHTTPServer):
    """Loopback TCP transport for the service."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], scheduler: Scheduler, verbose: bool):
        self.scheduler = scheduler
        self.verbose = verbose
        self._drain_cb = None
        super().__init__(address, ServiceHandler)

    def request_drain(self) -> None:
        if self._drain_cb is not None:
            self._drain_cb()

    @property
    def endpoint(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceUnixServer(ServiceTCPServer):
    """Unix-domain-socket transport (``--uds /path/sock``)."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # A previous daemon that crashed leaves a stale socket file behind;
        # binding over it is the expected restart path.
        path = self.server_address
        if isinstance(path, (bytes, str)) and os.path.exists(path):
            os.unlink(path)
        self.socket.bind(path)
        self.server_name = "uds"
        self.server_port = 0

    def server_close(self) -> None:
        super().server_close()
        path = self.server_address
        if isinstance(path, (bytes, str)) and os.path.exists(path):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - cleanup is best-effort
                pass

    @property
    def endpoint(self) -> str:
        return f"unix://{self.server_address}"


class ReproService:
    """Scheduler plus HTTP transport plus lifecycle (drain on signal).

    ``start()`` runs the server in a background thread (tests, bench);
    ``run()`` blocks until SIGTERM/SIGINT or an admin drain, then shuts
    down gracefully: refuse new submissions with 503, let in-flight
    simulations finish, checkpoint the journal, close the sockets.
    """

    def __init__(
        self,
        data_dir: str,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        uds: Optional[str] = None,
        workers: int = 2,
        max_retries: int = 2,
        verbose: bool = False,
    ):
        self.scheduler = Scheduler(
            data_dir, workers=workers, max_retries=max_retries, verbose=verbose
        )
        if uds is not None:
            self.server: ServiceTCPServer = ServiceUnixServer(
                uds, self.scheduler, verbose
            )
        else:
            self.server = ServiceTCPServer((host, port), self.scheduler, verbose)
        self._stop = threading.Event()
        self.server._drain_cb = self._stop.set
        self._thread: Optional[threading.Thread] = None

    @property
    def endpoint(self) -> str:
        return self.server.endpoint

    def start(self) -> "ReproService":
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def run(self, install_signals: bool = True) -> int:
        if install_signals:

            def _on_signal(signum: int, _frame: Any) -> None:
                print(
                    f"received {signal.Signals(signum).name}; draining "
                    "(refusing new submissions, finishing in-flight runs)",
                    file=sys.stderr,
                )
                self._stop.set()

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        self.start()
        print(f"repro serve listening on {self.endpoint}", file=sys.stderr)
        print(
            f"  data dir {self.scheduler.data_dir} "
            f"(journal, cache, store), {self.scheduler.workers} worker(s)",
            file=sys.stderr,
        )
        self._stop.wait()
        self.shutdown()
        print("drained; journal checkpointed", file=sys.stderr)
        return 0

    def shutdown(self, timeout: Optional[float] = 60.0) -> None:
        """Graceful stop: drain the pool, checkpoint, close the transport."""
        self.scheduler.drain(timeout=timeout)
        self.server.shutdown()
        self.server.server_close()
        self.scheduler.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
