#!/usr/bin/env python
"""Bursty (Gilbert-Elliott) vs uniform loss through the scenario subsystem.

Equation-based congestion control reacts to *loss events*, not individual
losses: many packets lost in one burst count roughly as one event.  This
example uses the declarative scenario layer to run the ``bursty-loss``
scenario twice at the same 2 % average loss rate -- once with independent
(Bernoulli-like, burst length 1) losses and once with bursts of 8 packets --
and compares the rate TFMCC achieves for the receiver behind the lossy link.

The same comparison is available from the command line::

    python -m repro sweep bursty-loss --grid burst_length=1,8 --reps 4

Run with:  python examples/bursty_vs_uniform_loss.py [--time-scale 0.1]
"""

import argparse

from repro.scenarios import get_scenario, run_scenario


def main(time_scale: float = 1.0) -> None:
    factory = get_scenario("bursty-loss")
    print(f"scenario : {factory.name} -- {factory.description}")
    results = {}
    for burst_length in (1.0, 8.0):
        spec = factory.spec(
            loss_rate=0.02,
            burst_length=burst_length,
            duration=60.0 * time_scale,
        )
        record = run_scenario(spec, seed=42)
        # The receiver behind the Gilbert-Elliott leaf is the last one.
        lossy = [f for f in record["flows"] if f["kind"] == "tfmcc"][-1]
        results[burst_length] = (record, lossy)
        print(
            f"  burst={burst_length:3.0f} pkts : "
            f"tfmcc(lossy leaf) {lossy['avg_bps'] / 1e3:8.1f} kbit/s, "
            f"tcp mean {record['tcp_mean_bps'] / 1e3:8.1f} kbit/s, "
            f"{record['links']['random_drops']} random drops"
        )
    uniform = results[1.0][1]["avg_bps"]
    bursty = results[8.0][1]["avg_bps"]
    if uniform > 0:
        print()
        print(
            f"Bursty/uniform TFMCC throughput ratio at equal average loss: "
            f"{bursty / uniform:.2f}"
        )
        print("(>1 is expected: bursts concentrate losses into fewer loss events.)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="multiply all simulated durations (use e.g. 0.1 for a quick look)",
    )
    main(parser.parse_args().time_scale)
