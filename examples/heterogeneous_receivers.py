#!/usr/bin/env python
"""File distribution to heterogeneous receivers with membership churn.

A software-update style workload: a long-lived multicast transfer reaches
receivers behind links of very different quality.  A congested mobile
receiver joins mid-transfer and later leaves; the script shows how TFMCC
selects it as the current limiting receiver (CLR), adapts the rate to it,
and recovers after it leaves -- the behaviour of the paper's Figures 11,
15 and 16.

Run with:  python examples/heterogeneous_receivers.py [--time-scale 0.1]
"""

import argparse

from repro import Network, Simulator, TFMCCSession, ThroughputMonitor


def main(time_scale: float = 1.0) -> None:
    ts = time_scale
    sim = Simulator(seed=23)
    network = Network(sim)
    # A well-connected office receiver, a DSL receiver and (later) a lossy
    # mobile receiver, all behind a common 20 Mbit/s distribution link.
    network.add_duplex_link("server", "core", 20e6, 0.002, jitter=0.001)
    network.add_duplex_link("core", "office", 10e6, 0.005, jitter=0.001)
    network.add_duplex_link("core", "dsl", 2e6, 0.02, jitter=0.001)
    network.add_duplex_link("core", "mobile", 800e3, 0.05, loss_rate=0.02, jitter=0.001)
    network.build_routes()

    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, network, sender_node="server", monitor=monitor)
    session.add_receiver("office", receiver_id="office")
    session.add_receiver("dsl", receiver_id="dsl")
    session.start(0.0)

    # The mobile receiver joins at t=60 s and leaves at t=150 s (paper time).
    session.add_receiver_at(60.0 * ts, "mobile", receiver_id="mobile")
    session.remove_receiver_at(150.0 * ts, "mobile")

    clr_timeline = []

    def sample_clr() -> None:
        clr_timeline.append((sim.now, session.sender.clr_id))
        sim.schedule(5.0 * ts, sample_clr)

    sim.schedule(5.0 * ts, sample_clr)
    duration = 220.0 * ts
    sim.run(until=duration)

    def window(name, start, end):
        return monitor.average_throughput(name, start * ts, end * ts) / 1e3

    print("Delivered rate at the office receiver (kbit/s):")
    print(f"  before the mobile joins  (20-60 s) : {window('office', 20, 60):8.1f}")
    print(f"  while the mobile is in  (70-150 s) : {window('office', 70, 150):8.1f}")
    print(f"  after the mobile leaves (170-220 s): {window('office', 170, 220):8.1f}")
    print()
    print(f"Mobile receiver goodput while joined: {window('mobile', 70, 150):8.1f} kbit/s")
    print()
    print("CLR over time (every 25 s):")
    for t, clr in clr_timeline[::5]:
        print(f"  t={t:5.0f} s  CLR={clr}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="multiply all simulated durations (use e.g. 0.1 for a quick look)",
    )
    main(parser.parse_args().time_scale)
