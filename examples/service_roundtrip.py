#!/usr/bin/env python
"""Round trip through the simulation service: submit, stream, cache hit.

Starts an in-process ``repro serve`` daemon on a Unix domain socket,
submits a fairness run through the HTTP control API, follows its
Server-Sent-Events progress stream, then submits the identical payload a
second time and shows it being answered from the result cache without
simulating.  The same flow works against a standalone daemon started
with ``python -m repro serve`` — point ``ServiceClient`` (or the
``repro submit/status/watch`` subcommands) at its address.

Run with:  python examples/service_roundtrip.py [--time-scale 0.1]
"""

import argparse
import tempfile
import time

from repro.service import ReproService, ServiceClient


def main(time_scale: float = 1.0) -> None:
    duration = max(30.0 * time_scale, 2.0)
    payload = {
        "scenario": "fairness",
        "seed": 7,
        "params": {"duration": duration, "num_tcp": 2},
    }
    with tempfile.TemporaryDirectory() as tmp:
        service = ReproService(
            f"{tmp}/data", uds=f"{tmp}/repro.sock", workers=1
        ).start()
        try:
            client = ServiceClient(service.endpoint)
            print(f"service listening on {service.endpoint}")

            start = time.perf_counter()
            job = client.submit(payload)
            print(f"cold submit: job {job['id']} ({job['units']} unit)")
            for event, data in client.watch(job["id"]):
                detail = {k: v for k, v in sorted(data.items()) if k != "seq"}
                print(f"  [{data.get('seq')}] {event}: {detail}")
            cold_s = time.perf_counter() - start
            record = client.result(job["id"])
            print(
                f"cold result after {cold_s:.2f}s: "
                f"tfmcc_mean_bps={record['tfmcc_mean_bps']:.0f} "
                f"fingerprint={record['run']['fingerprint']}"
            )

            start = time.perf_counter()
            again = client.submit(payload)
            final = client.wait(again["id"])
            warm_s = time.perf_counter() - start
            sources = final["sources"]
            assert sources["cached"] == 1, sources
            print(
                f"warm submit: job {again['id']} answered from the result "
                f"cache in {warm_s:.3f}s ({sources['cached']} cached unit, "
                "zero simulations)"
            )
        finally:
            service.shutdown(timeout=60)
        print("daemon drained; journal checkpointed")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="scale the simulated duration (e.g. 0.1 for a quick demo)",
    )
    args = parser.parse_args()
    main(time_scale=args.time_scale)
