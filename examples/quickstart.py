#!/usr/bin/env python
"""Quickstart: a TFMCC session with three receivers behind one bottleneck.

Builds a dumbbell topology, attaches a TFMCC sender and three receivers,
runs the simulation for a minute of simulated time and prints the sending
rate, the per-receiver throughput, the measured loss event rates and RTTs.

Run with:  python examples/quickstart.py [--time-scale 0.1]
"""

import argparse
import time

from repro import Network, Simulator, TFMCCConfig, TFMCCSession, ThroughputMonitor


def main(time_scale: float = 1.0) -> None:
    sim = Simulator(seed=7)
    # 2 Mbit/s bottleneck with 20 ms one-way delay, fast access links.
    network = Network.dumbbell(
        sim,
        num_left=1,
        num_right=3,
        bottleneck_bandwidth=2e6,
        bottleneck_delay=0.02,
        access_bandwidth=100e6,
        access_delay=0.001,
    )
    monitor = ThroughputMonitor(sim, interval=1.0)
    config = TFMCCConfig()  # paper defaults
    session = TFMCCSession(sim, network, sender_node="src0", config=config, monitor=monitor)
    receivers = [session.add_receiver(f"dst{i}") for i in range(3)]
    session.start(at=0.0)

    duration = 60.0 * time_scale
    started = time.perf_counter()
    sim.run(until=duration)
    wall = time.perf_counter() - started

    print(
        f"Simulated {duration:.0f} s, {sim.events_processed} events in "
        f"{wall:.2f} s wall time ({sim.events_processed / max(wall, 1e-9):,.0f} events/s)"
    )
    print(f"Final sending rate: {session.sender.current_rate_bps / 1e3:.1f} kbit/s")
    print(f"Current limiting receiver: {session.sender.clr_id}")
    exited = session.sender.slowstart_exited_at
    print(
        "Slowstart ended at t = "
        + (f"{exited:.2f} s" if exited is not None else "n/a (still in slowstart)")
    )
    print()
    print(f"{'receiver':>14} {'kbit/s':>9} {'loss rate':>10} {'RTT (ms)':>9}")
    for receiver in receivers:
        throughput = monitor.average_throughput(receiver.receiver_id, 20.0 * time_scale, duration)
        print(
            f"{receiver.receiver_id:>14} {throughput / 1e3:>9.1f} "
            f"{receiver.loss_event_rate:>10.4f} {receiver.rtt.rtt * 1e3:>9.1f}"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="multiply all simulated durations (use e.g. 0.1 for a quick look)",
    )
    main(parser.parse_args().time_scale)
