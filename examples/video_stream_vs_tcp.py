#!/usr/bin/env python
"""Multicast video streaming next to TCP cross traffic.

The paper motivates TFMCC with long-lived multicast streams (video, stock
tickers) that need a *smooth* rate while remaining TCP-friendly.  This
example streams to four receivers over a shared 4 Mbit/s bottleneck that
also carries three greedy TCP downloads, and reports:

* the average throughput of the TFMCC stream and of each TCP flow,
* the smoothness (coefficient of variation of the per-second rate) of both,
* Jain's fairness index across all flows.

Run with:  python examples/video_stream_vs_tcp.py [--time-scale 0.1]
"""

import argparse

from repro import (
    Network,
    Simulator,
    TFMCCSession,
    ThroughputMonitor,
    fairness_index,
)
from repro.experiments.common import add_tcp_flow


def main(time_scale: float = 1.0) -> None:
    sim = Simulator(seed=11)
    num_tcp = 3
    network = Network.dumbbell(
        sim,
        num_left=num_tcp + 1,
        num_right=4,
        bottleneck_bandwidth=4e6,
        bottleneck_delay=0.02,
        access_bandwidth=100e6,
        access_delay=0.001,
    )
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, network, sender_node="src0", monitor=monitor)
    receivers = [session.add_receiver(f"dst{i}") for i in range(4)]
    session.start(0.0)
    for i in range(1, num_tcp + 1):
        add_tcp_flow(sim, network, f"tcp{i}", f"src{i}", f"dst{i % 4}", monitor)

    duration = 120.0 * time_scale
    sim.run(until=duration)
    warmup = 30.0 * time_scale

    stream_stats = monitor.stats(receivers[0].receiver_id, warmup, duration)
    print("Multicast video stream (TFMCC):")
    print(f"  average rate : {stream_stats.mean / 1e3:8.1f} kbit/s")
    print(f"  rate CoV     : {stream_stats.coefficient_of_variation:8.2f}  (lower = smoother)")
    print()
    averages = [stream_stats.mean]
    print("TCP cross traffic:")
    for i in range(1, num_tcp + 1):
        stats = monitor.stats(f"tcp{i}", warmup, duration)
        averages.append(stats.mean)
        print(
            f"  tcp{i}: {stats.mean / 1e3:8.1f} kbit/s   "
            f"CoV {stats.coefficient_of_variation:4.2f}"
        )
    print()
    print(f"Jain fairness index over all flows: {fairness_index(averages):.3f}")
    print(f"TFMCC / mean TCP ratio: {averages[0] / (sum(averages[1:]) / num_tcp):.2f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="multiply all simulated durations (use e.g. 0.1 for a quick look)",
    )
    main(parser.parse_args().time_scale)
