"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks
PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
