"""Setuptools entry point.

Metadata is declared here (rather than pyproject.toml) so that
``pip install -e .`` works in offline environments whose setuptools lacks
PEP 660 editable-wheel support.

The core simulator is stdlib-only.  Optional extras:

``cohort``
    numpy, required by the vectorised aggregate-receiver simulation engine
    (``--engine cohort``); without it the engine raises
    ``EngineUnavailableError`` at build time.
``report``
    scientific stack for the paper-figure report pipeline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description=(
        "Reproduction of TFMCC (Widmer & Handley, SIGCOMM 2001): "
        "single-rate equation-based multicast congestion control"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        "cohort": ["numpy"],
        "report": ["numpy", "scipy", "matplotlib"],
    },
)
